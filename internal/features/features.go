// Package features implements the paper's online feature computation
// (Section IV-B). For an origin-destination pair it retrieves the origin's
// outbound transit-hop tree and the destination's inbound tree, identifies
// interchanges (a 1-NN search from each outbound leaf onto the inbound
// leaves followed by a walking-isochrone intersection test), and emits a
// fixed-width vector describing the pair's potential connectivity. OD
// vectors are aggregated to the origin level with the attractiveness
// weights α, mirroring the gravity-based access measures.
//
// Every lazy cache is a dense slice addressed by the zone index (the same
// index the forest and isochrone set use), and the hot path has Into
// variants writing into caller scratch, so a warm extractor serves feature
// vectors with zero allocations.
package features

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"accessquery/internal/geo"
	"accessquery/internal/hoptree"
	"accessquery/internal/isochrone"
	"accessquery/internal/par"
	"accessquery/internal/spatial"
	"accessquery/internal/todam"
)

// Dim is the width of the pair feature vector.
const Dim = 19

// Names lists the feature columns in vector order.
func Names() []string {
	return []string{
		"od_distance_m",
		"reachable_within_h",
		"hops_to_dest",
		"ob_size",
		"ib_size",
		"ob_best_leaf_dist_m",
		"ob_best_leaf_avg_journey_s",
		"ob_best_leaf_routes",
		"ob_best_leaf_visits",
		"ib_best_leaf_dist_m",
		"ib_best_leaf_avg_journey_s",
		"ib_best_leaf_routes",
		"ib_best_leaf_visits",
		"interchange_count",
		"interchange_best_dist_m",
		"hifreq_min_dist_to_dest_m",
		"reach_fraction_h",
		"walkable_direct",
		"walk_margin",
	}
}

// Scratch holds the per-goroutine buffers the Into variants write through:
// the reach BFS frontier, one pair vector for origin aggregation, and the
// interchange list. A Scratch must not be shared between concurrent calls;
// pool or stack one per worker. The zero value is ready to use.
type Scratch struct {
	reach hoptree.ReachScratch
	pair  []float64
	inter []int32
}

// scratchPool backs the allocating convenience wrappers (PairVector,
// OriginVector) so they stay cheap without burdening their callers with a
// Scratch.
var scratchPool = sync.Pool{New: func() interface{} { return new(Scratch) }}

// GetScratch returns a pooled Scratch for use with the *Into methods;
// return it with PutScratch once the call (not the result) is done.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a Scratch obtained from GetScratch to the pool.
func PutScratch(s *Scratch) { scratchPool.Put(s) }

// Extractor computes pair and origin-level feature vectors from the
// pre-computed structures.
type Extractor struct {
	forest *hoptree.Forest
	zones  []geo.Point
	isos   *isochrone.Set
	// Hops is the chaining depth h; the paper uses 1 or 2.
	Hops int

	// mu guards the lazy caches below: one Extractor is shared by every
	// concurrent engine run (e.g. a serving layer's worker pool). Cache
	// values are deterministic and immutable once stored, so misses compute
	// outside the write lock and the first stored value wins. Each cache is
	// a dense slice indexed by zone; the nil / negative entry is the
	// not-yet-computed sentinel.
	mu sync.RWMutex
	// ibTrees caches a KD-tree over the inbound leaves per destination zone.
	ibTrees []*spatial.KDTree
	// reachFrac caches the h-hop reachable fraction per origin (-1 =
	// uncached).
	reachFrac []float64
	// hopsTo caches per-origin hop counts: hopsTo[origin][z] is the minimum
	// hop count to z, -1 when unreachable within Hops; a nil row is
	// uncached.
	hopsTo [][]int32

	// cacheHits/cacheMisses count lazy-cache outcomes for this extractor,
	// alongside the process-wide metrics. Engine runs snapshot them around a
	// query to attribute cache behaviour per stage; the counts are shared by
	// all concurrent users of the extractor, so per-query deltas are an
	// approximation under concurrency.
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
}

// CacheStats returns the cumulative lazy-cache hit and miss counts for this
// extractor.
func (e *Extractor) CacheStats() (hits, misses int64) {
	return e.cacheHits.Load(), e.cacheMisses.Load()
}

func (e *Extractor) cacheHit() {
	e.cacheHits.Add(1)
	mCacheHits.Inc()
}

func (e *Extractor) cacheMiss() {
	e.cacheMisses.Add(1)
	mCacheMisses.Inc()
}

// NewExtractor builds an extractor. zones are zone centroids indexed like
// the forest; isos are the walking isochrones for interchange testing.
func NewExtractor(forest *hoptree.Forest, zones []geo.Point, isos *isochrone.Set, hops int) (*Extractor, error) {
	if forest == nil || isos == nil {
		return nil, fmt.Errorf("features: nil forest or isochrones")
	}
	if forest.Zones() != len(zones) {
		return nil, fmt.Errorf("features: forest covers %d zones, got %d centroids", forest.Zones(), len(zones))
	}
	if len(isos.Isochrones) != len(zones) {
		return nil, fmt.Errorf("features: %d isochrones for %d zones", len(isos.Isochrones), len(zones))
	}
	if hops <= 0 {
		hops = 2
	}
	reachFrac := make([]float64, len(zones))
	for i := range reachFrac {
		reachFrac[i] = -1
	}
	return &Extractor{
		forest:    forest,
		zones:     zones,
		isos:      isos,
		Hops:      hops,
		ibTrees:   make([]*spatial.KDTree, len(zones)),
		reachFrac: reachFrac,
		hopsTo:    make([][]int32, len(zones)),
	}, nil
}

// Warm populates every lazy cache — per-origin hop rows and reach
// fractions, per-destination inbound KD-trees — across a worker pool,
// shifting the first query's cache-miss cost into the offline phase. The
// cached values are deterministic, so warming never changes any feature
// vector; it only moves when the work happens. Safe to call concurrently
// with queries.
func (e *Extractor) Warm(workers int) {
	// Each cache accessor takes the write lock only for its own key, so
	// warming in parallel contends briefly per entry rather than serializing
	// the whole pass.
	_ = par.For(workers, len(e.zones), func(zone int) error {
		s := scratchPool.Get().(*Scratch)
		e.reachFraction(zone, s) // also fills hopsTo[zone]
		e.ibTreeFor(zone)
		scratchPool.Put(s)
		return nil
	})
}

// walkRadiusMeters is the direct-walk feasibility radius used by the
// walkable_direct feature: the crow-flight distance coverable in tau
// seconds.
func (e *Extractor) walkRadiusMeters() float64 {
	return e.isos.Tau / (3.6 / 4.5)
}

// PairVector computes the feature vector for (origin zone, destination
// point). destZone is the zone the destination POI is associated with.
func (e *Extractor) PairVector(origin int, dest geo.Point, destZone int) ([]float64, error) {
	v := make([]float64, Dim)
	s := scratchPool.Get().(*Scratch)
	err := e.PairVectorInto(v, origin, dest, destZone, s)
	scratchPool.Put(s)
	if err != nil {
		return nil, err
	}
	return v, nil
}

// PairVectorInto computes the feature vector for (origin zone, destination
// point) into dst, which must have length Dim. With warm caches the call
// performs no allocations.
func (e *Extractor) PairVectorInto(dst []float64, origin int, dest geo.Point, destZone int, s *Scratch) error {
	if len(dst) != Dim {
		return fmt.Errorf("features: dst length %d, want %d", len(dst), Dim)
	}
	if origin < 0 || origin >= len(e.zones) {
		return fmt.Errorf("features: origin %d out of range", origin)
	}
	if destZone < 0 || destZone >= len(e.zones) {
		return fmt.Errorf("features: destination zone %d out of range", destZone)
	}
	if s == nil {
		return fmt.Errorf("features: nil scratch")
	}
	mPairVectors.Inc()
	v := dst
	for i := range v {
		v[i] = 0
	}
	op := e.zones[origin]
	odDist := geo.DistanceMeters(op, dest)
	v[0] = odDist

	hopsTo := e.hopsFor(origin, s)
	if h := hopsTo[destZone]; h >= 0 {
		v[1] = 1
		v[2] = float64(h)
	} else {
		v[2] = float64(e.Hops + 1) // sentinel: beyond h hops
	}

	ob := e.forest.Outbound(origin)
	ib := e.forest.Inbound(destZone)
	v[3] = float64(ob.Size())
	v[4] = float64(ib.Size())

	// Closest outbound leaf to the destination.
	if leaf, dist := e.closestLeaf(ob, dest); leaf != nil {
		v[5] = dist
		v[6] = leaf.AvgJourney()
		v[7] = float64(leaf.RouteCount())
		v[8] = float64(leaf.Visits)
	} else {
		v[5] = odDist // nothing closer than staying put
	}
	// Closest inbound leaf to the origin.
	if leaf, dist := e.closestLeaf(ib, op); leaf != nil {
		v[9] = dist
		v[10] = leaf.AvgJourney()
		v[11] = float64(leaf.RouteCount())
		v[12] = float64(leaf.Visits)
	} else {
		v[9] = odDist
	}

	// Interchanges.
	inter := e.interchanges(ob, destZone, s)
	v[13] = float64(len(inter))
	best := math.Inf(1)
	for _, zi := range inter {
		if d := geo.DistanceMeters(e.zones[zi], dest); d < best {
			best = d
		}
	}
	if math.IsInf(best, 1) {
		best = odDist
	}
	v[14] = best

	// High-frequency-route feature: among the top outbound leaves by
	// visits, how close can we get to the destination?
	v[15] = e.hiFreqApproach(ob, dest, odDist)
	v[16] = e.reachFraction(origin, s)
	if odDist <= e.walkRadiusMeters() {
		v[17] = 1
	}
	// walk_margin addresses the walk-only-trip difficulty the paper's
	// conclusion flags: how deep inside (positive) or far outside
	// (negative) the walking radius the destination sits, in units of the
	// radius. Walk-only pairs have zero cost variance (ACSD 0), and this
	// continuous signal lets the models separate them from marginal ones.
	v[18] = (e.walkRadiusMeters() - odDist) / e.walkRadiusMeters()
	return nil
}

func (e *Extractor) hopsFor(origin int, s *Scratch) []int32 {
	e.mu.RLock()
	row := e.hopsTo[origin]
	e.mu.RUnlock()
	if row != nil {
		e.cacheHit()
		return row
	}
	e.cacheMiss()
	row = make([]int32, len(e.zones))
	e.forest.ReachableInto(row, origin, e.Hops, &s.reach)
	e.mu.Lock()
	if prev := e.hopsTo[origin]; prev != nil {
		row = prev // a concurrent miss stored first; share its row
	} else {
		e.hopsTo[origin] = row
	}
	e.mu.Unlock()
	return row
}

func (e *Extractor) reachFraction(origin int, s *Scratch) float64 {
	e.mu.RLock()
	f := e.reachFrac[origin]
	e.mu.RUnlock()
	if f >= 0 {
		e.cacheHit()
		return f
	}
	e.cacheMiss()
	reached := 0
	for _, h := range e.hopsFor(origin, s) {
		if h >= 0 {
			reached++
		}
	}
	f = float64(reached) / float64(len(e.zones))
	e.mu.Lock()
	e.reachFrac[origin] = f
	e.mu.Unlock()
	return f
}

// closestLeaf returns the leaf geographically nearest to p and its
// distance, or nil for an empty tree. Leaves are scanned in zone order, so
// the result is deterministic.
func (e *Extractor) closestLeaf(t *hoptree.Tree, p geo.Point) (*hoptree.Leaf, float64) {
	var best *hoptree.Leaf
	bestD := math.Inf(1)
	for i := range t.Leaves {
		leaf := &t.Leaves[i]
		if d := geo.DistanceMeters(e.zones[leaf.Zone], p); d < bestD {
			bestD = d
			best = leaf
		}
	}
	if best == nil {
		return nil, 0
	}
	return best, bestD
}

// interchanges identifies the outbound leaves that connect to the inbound
// tree of destZone: for each outbound leaf, the nearest inbound leaf is
// found with a 1-NN query and the pair is tested for walking-isochrone
// overlap (Section IV-B1). The returned slice aliases s.inter and is valid
// until the next call on the same scratch.
func (e *Extractor) interchanges(ob *hoptree.Tree, destZone int, s *Scratch) []int32 {
	out := s.inter[:0]
	defer func() { s.inter = out }()
	ibTree := e.ibTreeFor(destZone)
	if ibTree == nil || ibTree.Len() == 0 {
		return nil
	}
	for i := range ob.Leaves {
		zone := int(ob.Leaves[i].Zone)
		nb, ok := ibTree.Nearest(e.zones[zone])
		if !ok {
			continue
		}
		isoA := e.isos.For(zone)
		isoB := e.isos.For(nb.Item.ID)
		if isoA == nil || isoB == nil {
			continue
		}
		if zone == nb.Item.ID || isoA.Intersects(isoB) {
			out = append(out, int32(zone))
		}
	}
	return out
}

func (e *Extractor) ibTreeFor(destZone int) *spatial.KDTree {
	e.mu.RLock()
	t := e.ibTrees[destZone]
	e.mu.RUnlock()
	if t != nil {
		e.cacheHit()
		return t
	}
	e.cacheMiss()
	ib := e.forest.Inbound(destZone)
	items := make([]spatial.Item, 0, ib.Size())
	for i := range ib.Leaves {
		zone := int(ib.Leaves[i].Zone)
		items = append(items, spatial.Item{ID: zone, Point: e.zones[zone]})
	}
	t = spatial.NewKDTree(items)
	e.mu.Lock()
	if prev := e.ibTrees[destZone]; prev != nil {
		t = prev
	} else {
		e.ibTrees[destZone] = t
	}
	e.mu.Unlock()
	return t
}

// hiFreqApproach returns the minimum distance to dest over the top-k
// outbound leaves ranked by visit frequency (zone index as deterministic
// tie-break), falling back to the direct distance when the tree is empty.
// The top-k selection runs over fixed-size arrays: no sort, no allocation.
func (e *Extractor) hiFreqApproach(ob *hoptree.Tree, dest geo.Point, fallback float64) float64 {
	const topK = 5
	if len(ob.Leaves) == 0 {
		return fallback
	}
	var topZone [topK]int32
	var topVisits [topK]int32
	n := 0
	for i := range ob.Leaves {
		zone, visits := ob.Leaves[i].Zone, ob.Leaves[i].Visits
		// Leaves arrive in ascending zone order, so on equal visit counts
		// the earlier (lower) zone outranks: insert strictly-greater only.
		pos := n
		for pos > 0 && visits > topVisits[pos-1] {
			pos--
		}
		if pos >= topK {
			continue
		}
		hi := n
		if hi >= topK {
			hi = topK - 1
		}
		for j := hi; j > pos; j-- {
			topZone[j], topVisits[j] = topZone[j-1], topVisits[j-1]
		}
		topZone[pos], topVisits[pos] = zone, visits
		if n < topK {
			n++
		}
	}
	best := math.Inf(1)
	for i := 0; i < n; i++ {
		if d := geo.DistanceMeters(e.zones[topZone[i]], dest); d < best {
			best = d
		}
	}
	return best
}

// OriginVector aggregates a zone's OD pair vectors to the origin level with
// an α-weighted mean, the same weighting the gravity access measures use.
// poiZone maps POI index to its associated zone; poiPts are POI locations.
func (e *Extractor) OriginVector(origin int, row []todam.PairTrips, poiPts []geo.Point, poiZone []int) ([]float64, error) {
	agg := make([]float64, Dim)
	s := scratchPool.Get().(*Scratch)
	err := e.OriginVectorInto(agg, s, origin, row, poiPts, poiZone)
	scratchPool.Put(s)
	if err != nil {
		return nil, err
	}
	return agg, nil
}

// OriginVectorInto is OriginVector writing into dst (length Dim) through
// caller scratch; with warm caches it performs no allocations.
func (e *Extractor) OriginVectorInto(dst []float64, s *Scratch, origin int, row []todam.PairTrips, poiPts []geo.Point, poiZone []int) error {
	if len(dst) != Dim {
		return fmt.Errorf("features: dst length %d, want %d", len(dst), Dim)
	}
	if s == nil {
		return fmt.Errorf("features: nil scratch")
	}
	if s.pair == nil {
		s.pair = make([]float64, Dim)
	}
	for j := range dst {
		dst[j] = 0
	}
	var wsum float64
	for _, pt := range row {
		if pt.POI < 0 || pt.POI >= len(poiPts) || pt.POI >= len(poiZone) {
			return fmt.Errorf("features: POI %d out of range", pt.POI)
		}
		if err := e.PairVectorInto(s.pair, origin, poiPts[pt.POI], poiZone[pt.POI], s); err != nil {
			return err
		}
		w := pt.Alpha
		wsum += w
		for j := range dst {
			dst[j] += w * s.pair[j]
		}
	}
	if wsum == 0 {
		// Zone with no associated POIs: describe it by its own connectivity
		// so the model still has signal.
		return e.PairVectorInto(dst, origin, e.zones[origin], origin, s)
	}
	for j := range dst {
		dst[j] /= wsum
	}
	return nil
}
