// Package features implements the paper's online feature computation
// (Section IV-B). For an origin-destination pair it retrieves the origin's
// outbound transit-hop tree and the destination's inbound tree, identifies
// interchanges (a 1-NN search from each outbound leaf onto the inbound
// leaves followed by a walking-isochrone intersection test), and emits a
// fixed-width vector describing the pair's potential connectivity. OD
// vectors are aggregated to the origin level with the attractiveness
// weights α, mirroring the gravity-based access measures.
package features

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"accessquery/internal/geo"
	"accessquery/internal/hoptree"
	"accessquery/internal/isochrone"
	"accessquery/internal/par"
	"accessquery/internal/spatial"
	"accessquery/internal/todam"
)

// Dim is the width of the pair feature vector.
const Dim = 19

// Names lists the feature columns in vector order.
func Names() []string {
	return []string{
		"od_distance_m",
		"reachable_within_h",
		"hops_to_dest",
		"ob_size",
		"ib_size",
		"ob_best_leaf_dist_m",
		"ob_best_leaf_avg_journey_s",
		"ob_best_leaf_routes",
		"ob_best_leaf_visits",
		"ib_best_leaf_dist_m",
		"ib_best_leaf_avg_journey_s",
		"ib_best_leaf_routes",
		"ib_best_leaf_visits",
		"interchange_count",
		"interchange_best_dist_m",
		"hifreq_min_dist_to_dest_m",
		"reach_fraction_h",
		"walkable_direct",
		"walk_margin",
	}
}

// Extractor computes pair and origin-level feature vectors from the
// pre-computed structures.
type Extractor struct {
	forest *hoptree.Forest
	zones  []geo.Point
	isos   *isochrone.Set
	// Hops is the chaining depth h; the paper uses 1 or 2.
	Hops int

	// mu guards the lazy caches below: one Extractor is shared by every
	// concurrent engine run (e.g. a serving layer's worker pool), and
	// unsynchronized map writes are a fatal runtime error. Cache values are
	// deterministic and immutable once stored, so misses compute outside the
	// write lock and the first stored value wins.
	mu sync.RWMutex
	// ibTrees caches a KD-tree over the inbound leaves per destination zone.
	ibTrees map[int]*spatial.KDTree
	// reachFrac caches the h-hop reachable fraction per origin.
	reachFrac map[int]float64
	// hopsTo caches per-origin hop counts.
	hopsTo map[int]map[int]int

	// cacheHits/cacheMisses count lazy-cache outcomes for this extractor,
	// alongside the process-wide metrics. Engine runs snapshot them around a
	// query to attribute cache behaviour per stage; the counts are shared by
	// all concurrent users of the extractor, so per-query deltas are an
	// approximation under concurrency.
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
}

// CacheStats returns the cumulative lazy-cache hit and miss counts for this
// extractor.
func (e *Extractor) CacheStats() (hits, misses int64) {
	return e.cacheHits.Load(), e.cacheMisses.Load()
}

func (e *Extractor) cacheHit() {
	e.cacheHits.Add(1)
	mCacheHits.Inc()
}

func (e *Extractor) cacheMiss() {
	e.cacheMisses.Add(1)
	mCacheMisses.Inc()
}

// NewExtractor builds an extractor. zones are zone centroids indexed like
// the forest; isos are the walking isochrones for interchange testing.
func NewExtractor(forest *hoptree.Forest, zones []geo.Point, isos *isochrone.Set, hops int) (*Extractor, error) {
	if forest == nil || isos == nil {
		return nil, fmt.Errorf("features: nil forest or isochrones")
	}
	if forest.Zones() != len(zones) {
		return nil, fmt.Errorf("features: forest covers %d zones, got %d centroids", forest.Zones(), len(zones))
	}
	if len(isos.Isochrones) != len(zones) {
		return nil, fmt.Errorf("features: %d isochrones for %d zones", len(isos.Isochrones), len(zones))
	}
	if hops <= 0 {
		hops = 2
	}
	return &Extractor{
		forest:    forest,
		zones:     zones,
		isos:      isos,
		Hops:      hops,
		ibTrees:   make(map[int]*spatial.KDTree),
		reachFrac: make(map[int]float64),
		hopsTo:    make(map[int]map[int]int),
	}, nil
}

// Warm populates every lazy cache — per-origin hop maps and reach
// fractions, per-destination inbound KD-trees — across a worker pool,
// shifting the first query's cache-miss cost into the offline phase. The
// cached values are deterministic, so warming never changes any feature
// vector; it only moves when the work happens. Safe to call concurrently
// with queries.
func (e *Extractor) Warm(workers int) {
	// Each cache accessor takes the write lock only for its own key, so
	// warming in parallel contends briefly per entry rather than serializing
	// the whole pass.
	_ = par.For(workers, len(e.zones), func(zone int) error {
		e.reachFraction(zone) // also fills hopsTo[zone]
		e.ibTreeFor(zone)
		return nil
	})
}

// walkRadiusMeters is the direct-walk feasibility radius used by the
// walkable_direct feature: the crow-flight distance coverable in tau
// seconds.
func (e *Extractor) walkRadiusMeters() float64 {
	return e.isos.Tau / (3.6 / 4.5)
}

// PairVector computes the feature vector for (origin zone, destination
// point). destZone is the zone the destination POI is associated with.
func (e *Extractor) PairVector(origin int, dest geo.Point, destZone int) ([]float64, error) {
	if origin < 0 || origin >= len(e.zones) {
		return nil, fmt.Errorf("features: origin %d out of range", origin)
	}
	if destZone < 0 || destZone >= len(e.zones) {
		return nil, fmt.Errorf("features: destination zone %d out of range", destZone)
	}
	mPairVectors.Inc()
	v := make([]float64, Dim)
	op := e.zones[origin]
	odDist := geo.DistanceMeters(op, dest)
	v[0] = odDist

	hopsTo := e.hopsFor(origin)
	if h, ok := hopsTo[destZone]; ok {
		v[1] = 1
		v[2] = float64(h)
	} else {
		v[2] = float64(e.Hops + 1) // sentinel: beyond h hops
	}

	ob := e.forest.Outbound(origin)
	ib := e.forest.Inbound(destZone)
	v[3] = float64(ob.Size())
	v[4] = float64(ib.Size())

	// Closest outbound leaf to the destination.
	if leaf, dist := e.closestLeaf(ob, dest); leaf != nil {
		v[5] = dist
		v[6] = leaf.AvgJourney()
		v[7] = float64(leaf.RouteCount())
		v[8] = float64(leaf.Visits)
	} else {
		v[5] = odDist // nothing closer than staying put
	}
	// Closest inbound leaf to the origin.
	if leaf, dist := e.closestLeaf(ib, op); leaf != nil {
		v[9] = dist
		v[10] = leaf.AvgJourney()
		v[11] = float64(leaf.RouteCount())
		v[12] = float64(leaf.Visits)
	} else {
		v[9] = odDist
	}

	// Interchanges.
	inter := e.interchanges(ob, destZone)
	v[13] = float64(len(inter))
	best := math.Inf(1)
	for _, zi := range inter {
		if d := geo.DistanceMeters(e.zones[zi], dest); d < best {
			best = d
		}
	}
	if math.IsInf(best, 1) {
		best = odDist
	}
	v[14] = best

	// High-frequency-route feature: among the top outbound leaves by
	// visits, how close can we get to the destination?
	v[15] = e.hiFreqApproach(ob, dest, odDist)
	v[16] = e.reachFraction(origin)
	if odDist <= e.walkRadiusMeters() {
		v[17] = 1
	}
	// walk_margin addresses the walk-only-trip difficulty the paper's
	// conclusion flags: how deep inside (positive) or far outside
	// (negative) the walking radius the destination sits, in units of the
	// radius. Walk-only pairs have zero cost variance (ACSD 0), and this
	// continuous signal lets the models separate them from marginal ones.
	v[18] = (e.walkRadiusMeters() - odDist) / e.walkRadiusMeters()
	return v, nil
}

func (e *Extractor) hopsFor(origin int) map[int]int {
	e.mu.RLock()
	m, ok := e.hopsTo[origin]
	e.mu.RUnlock()
	if ok {
		e.cacheHit()
		return m
	}
	e.cacheMiss()
	m = e.forest.ReachableWithin(origin, e.Hops)
	e.mu.Lock()
	if prev, ok := e.hopsTo[origin]; ok {
		m = prev // a concurrent miss stored first; share its map
	} else {
		e.hopsTo[origin] = m
	}
	e.mu.Unlock()
	return m
}

func (e *Extractor) reachFraction(origin int) float64 {
	e.mu.RLock()
	f, ok := e.reachFrac[origin]
	e.mu.RUnlock()
	if ok {
		e.cacheHit()
		return f
	}
	e.cacheMiss()
	f = float64(len(e.hopsFor(origin))) / float64(len(e.zones))
	e.mu.Lock()
	e.reachFrac[origin] = f
	e.mu.Unlock()
	return f
}

// closestLeaf returns the leaf geographically nearest to p and its
// distance, or nil for an empty tree.
func (e *Extractor) closestLeaf(t *hoptree.Tree, p geo.Point) (*hoptree.Leaf, float64) {
	var best *hoptree.Leaf
	bestD := math.Inf(1)
	for zone, leaf := range t.Leaves {
		if d := geo.DistanceMeters(e.zones[zone], p); d < bestD {
			bestD = d
			best = leaf
		}
	}
	if best == nil {
		return nil, 0
	}
	return best, bestD
}

// interchanges identifies the outbound leaves that connect to the inbound
// tree of destZone: for each outbound leaf, the nearest inbound leaf is
// found with a 1-NN query and the pair is tested for walking-isochrone
// overlap (Section IV-B1).
func (e *Extractor) interchanges(ob *hoptree.Tree, destZone int) []int {
	ibTree := e.ibTreeFor(destZone)
	if ibTree == nil || ibTree.Len() == 0 {
		return nil
	}
	var out []int
	for zone := range ob.Leaves {
		nb, ok := ibTree.Nearest(e.zones[zone])
		if !ok {
			continue
		}
		isoA := e.isos.For(zone)
		isoB := e.isos.For(nb.Item.ID)
		if isoA == nil || isoB == nil {
			continue
		}
		if zone == nb.Item.ID || isoA.Intersects(isoB) {
			out = append(out, zone)
		}
	}
	return out
}

func (e *Extractor) ibTreeFor(destZone int) *spatial.KDTree {
	e.mu.RLock()
	t, ok := e.ibTrees[destZone]
	e.mu.RUnlock()
	if ok {
		e.cacheHit()
		return t
	}
	e.cacheMiss()
	ib := e.forest.Inbound(destZone)
	items := make([]spatial.Item, 0, ib.Size())
	for zone := range ib.Leaves {
		items = append(items, spatial.Item{ID: zone, Point: e.zones[zone]})
	}
	t = spatial.NewKDTree(items)
	e.mu.Lock()
	if prev, ok := e.ibTrees[destZone]; ok {
		t = prev
	} else {
		e.ibTrees[destZone] = t
	}
	e.mu.Unlock()
	return t
}

// hiFreqApproach returns the minimum distance to dest over the top-k
// outbound leaves ranked by visit frequency, falling back to the direct
// distance when the tree is empty.
func (e *Extractor) hiFreqApproach(ob *hoptree.Tree, dest geo.Point, fallback float64) float64 {
	const topK = 5
	// Select top-K by visits with a small selection pass.
	type lv struct {
		zone   int
		visits int
	}
	var top []lv
	for zone, leaf := range ob.Leaves {
		top = append(top, lv{zone: zone, visits: leaf.Visits})
	}
	if len(top) == 0 {
		return fallback
	}
	// Sort by visits descending with zone id as a deterministic tie-break
	// (map iteration order must not leak into features).
	sort.Slice(top, func(i, j int) bool {
		if top[i].visits != top[j].visits {
			return top[i].visits > top[j].visits
		}
		return top[i].zone < top[j].zone
	})
	k := topK
	if k > len(top) {
		k = len(top)
	}
	best := math.Inf(1)
	for _, t := range top[:k] {
		if d := geo.DistanceMeters(e.zones[t.zone], dest); d < best {
			best = d
		}
	}
	return best
}

// OriginVector aggregates a zone's OD pair vectors to the origin level with
// an α-weighted mean, the same weighting the gravity access measures use.
// poiZone maps POI index to its associated zone; poiPts are POI locations.
func (e *Extractor) OriginVector(origin int, row []todam.PairTrips, poiPts []geo.Point, poiZone []int) ([]float64, error) {
	agg := make([]float64, Dim)
	var wsum float64
	for _, pt := range row {
		if pt.POI < 0 || pt.POI >= len(poiPts) || pt.POI >= len(poiZone) {
			return nil, fmt.Errorf("features: POI %d out of range", pt.POI)
		}
		v, err := e.PairVector(origin, poiPts[pt.POI], poiZone[pt.POI])
		if err != nil {
			return nil, err
		}
		w := pt.Alpha
		wsum += w
		for j := range agg {
			agg[j] += w * v[j]
		}
	}
	if wsum == 0 {
		// Zone with no associated POIs: describe it by its own connectivity
		// so the model still has signal.
		v, err := e.PairVector(origin, e.zones[origin], origin)
		if err != nil {
			return nil, err
		}
		return v, nil
	}
	for j := range agg {
		agg[j] /= wsum
	}
	return agg, nil
}
