package features

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"accessquery/internal/geo"
	"accessquery/internal/graph"
	"accessquery/internal/gtfs"
	"accessquery/internal/hoptree"
	"accessquery/internal/isochrone"
	"accessquery/internal/synth"
	"accessquery/internal/todam"
)

// worldFixture builds the full preprocessing stack over a small synthetic
// city, shared across the tests in this package.
type worldFixture struct {
	city   *synth.City
	zones  []geo.Point
	isos   *isochrone.Set
	forest *hoptree.Forest
}

var cached *worldFixture

func fixture(t testing.TB) *worldFixture {
	if cached != nil {
		return cached
	}
	c, err := synth.Generate(synth.Scaled(synth.Coventry(), 0.08))
	if err != nil {
		t.Fatal(err)
	}
	zones := make([]geo.Point, len(c.Zones))
	nodes := make([]graph.NodeID, len(c.Zones))
	for i, z := range c.Zones {
		zones[i] = z.Centroid
		nodes[i] = c.ZoneNode[i]
	}
	isos, err := isochrone.ComputeSet(c.Road, zones, nodes, isochrone.DefaultTauSeconds)
	if err != nil {
		t.Fatal(err)
	}
	interval := gtfs.Interval{Start: 7 * 3600, End: 9 * 3600, Day: time.Tuesday}
	b, err := hoptree.NewBuilder(c.Feed, interval, zones, isos)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := hoptree.BuildForest(b)
	if err != nil {
		t.Fatal(err)
	}
	cached = &worldFixture{city: c, zones: zones, isos: isos, forest: forest}
	return cached
}

func newExtractor(t testing.TB) *Extractor {
	w := fixture(t)
	e, err := NewExtractor(w.forest, w.zones, w.isos, 2)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewExtractorValidation(t *testing.T) {
	w := fixture(t)
	if _, err := NewExtractor(nil, w.zones, w.isos, 2); err == nil {
		t.Error("nil forest should fail")
	}
	if _, err := NewExtractor(w.forest, w.zones[:3], w.isos, 2); err == nil {
		t.Error("zone count mismatch should fail")
	}
}

func TestNamesMatchesDim(t *testing.T) {
	if len(Names()) != Dim {
		t.Fatalf("Names() has %d entries, Dim is %d", len(Names()), Dim)
	}
	seen := map[string]bool{}
	for _, n := range Names() {
		if seen[n] {
			t.Errorf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
}

func TestPairVectorShapeAndSanity(t *testing.T) {
	w := fixture(t)
	e := newExtractor(t)
	dest := w.zones[len(w.zones)-1]
	v, err := e.PairVector(0, dest, len(w.zones)-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != Dim {
		t.Fatalf("vector length %d, want %d", len(v), Dim)
	}
	for j, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Errorf("feature %d (%s) is %v", j, Names()[j], x)
		}
	}
	if v[0] <= 0 {
		t.Errorf("od distance = %v, want positive", v[0])
	}
	// reach_fraction in [0,1].
	if v[16] < 0 || v[16] > 1 {
		t.Errorf("reach fraction = %v", v[16])
	}
	// binary features are binary.
	if v[1] != 0 && v[1] != 1 {
		t.Errorf("reachable flag = %v", v[1])
	}
	if v[17] != 0 && v[17] != 1 {
		t.Errorf("walkable flag = %v", v[17])
	}
}

func TestPairVectorSelfPairIsWalkable(t *testing.T) {
	w := fixture(t)
	e := newExtractor(t)
	v, err := e.PairVector(0, w.zones[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 0 {
		t.Errorf("self distance = %v", v[0])
	}
	if v[17] != 1 {
		t.Error("self pair should be walkable")
	}
}

func TestPairVectorOutOfRange(t *testing.T) {
	w := fixture(t)
	e := newExtractor(t)
	if _, err := e.PairVector(-1, w.zones[0], 0); err == nil {
		t.Error("negative origin should fail")
	}
	if _, err := e.PairVector(0, w.zones[0], len(w.zones)); err == nil {
		t.Error("out-of-range dest zone should fail")
	}
}

func TestPairVectorDeterministicAndCached(t *testing.T) {
	w := fixture(t)
	e := newExtractor(t)
	dest := w.zones[5]
	v1, err := e.PairVector(2, dest, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Second call exercises the caches.
	v2, err := e.PairVector(2, dest, 5)
	if err != nil {
		t.Fatal(err)
	}
	for j := range v1 {
		if v1[j] != v2[j] {
			t.Fatalf("feature %d differs between calls: %v vs %v", j, v1[j], v2[j])
		}
	}
}

func TestDistanceFeatureTracksGeography(t *testing.T) {
	w := fixture(t)
	e := newExtractor(t)
	// Find the closest and farthest zones from zone 0.
	near, far := -1, -1
	nearD, farD := math.Inf(1), 0.0
	for i := 1; i < len(w.zones); i++ {
		d := geo.DistanceMeters(w.zones[0], w.zones[i])
		if d < nearD {
			nearD = d
			near = i
		}
		if d > farD {
			farD = d
			far = i
		}
	}
	vNear, err := e.PairVector(0, w.zones[near], near)
	if err != nil {
		t.Fatal(err)
	}
	vFar, err := e.PairVector(0, w.zones[far], far)
	if err != nil {
		t.Fatal(err)
	}
	if vNear[0] >= vFar[0] {
		t.Errorf("distance feature inverted: near %v >= far %v", vNear[0], vFar[0])
	}
}

func TestOriginVector(t *testing.T) {
	w := fixture(t)
	e := newExtractor(t)
	pois := w.city.POIs[synth.POIVaxCenter]
	poiPts := make([]geo.Point, len(pois))
	for j, p := range pois {
		poiPts[j] = p.Point
	}
	poiZone := assignZones(w.zones, poiPts)
	m, err := todam.Build(todam.Spec{
		ZonePts: w.zones, POIPts: poiPts,
		Interval:       gtfs.Interval{Start: 7 * 3600, End: 9 * 3600, Day: time.Tuesday},
		SamplesPerHour: 10, Attractiveness: todam.DefaultAttractiveness(), Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for zone := 0; zone < len(w.zones); zone++ {
		row := m.Row(zone)
		v, err := e.OriginVector(zone, row, poiPts, poiZone)
		if err != nil {
			t.Fatal(err)
		}
		if len(v) != Dim {
			t.Fatalf("origin vector length %d", len(v))
		}
		for j, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("zone %d feature %d is %v", zone, j, x)
			}
		}
		if len(row) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no zone had associated POIs; fixture too sparse")
	}
}

func TestWalkMarginFeature(t *testing.T) {
	w := fixture(t)
	e := newExtractor(t)
	// Self pair: margin 1 (distance zero).
	v, err := e.PairVector(0, w.zones[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[18]-1) > 1e-9 {
		t.Errorf("self walk margin = %v, want 1", v[18])
	}
	// A far pair has a negative margin.
	far, farD := 0, 0.0
	for i := range w.zones {
		if d := geo.DistanceMeters(w.zones[0], w.zones[i]); d > farD {
			farD = d
			far = i
		}
	}
	v, err = e.PairVector(0, w.zones[far], far)
	if err != nil {
		t.Fatal(err)
	}
	if v[18] >= 0 {
		t.Errorf("far walk margin = %v, want negative", v[18])
	}
	// Margin and the walkable flag agree in sign.
	if (v[17] == 1) != (v[18] >= 0) {
		t.Errorf("walkable flag %v disagrees with margin %v", v[17], v[18])
	}
}

func TestOriginVectorEmptyRowFallsBack(t *testing.T) {
	e := newExtractor(t)
	v, err := e.OriginVector(0, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != Dim {
		t.Fatalf("fallback vector length %d", len(v))
	}
}

func TestOriginVectorBadPOIIndex(t *testing.T) {
	w := fixture(t)
	e := newExtractor(t)
	row := []todam.PairTrips{{POI: 99, Alpha: 1}}
	if _, err := e.OriginVector(0, row, []geo.Point{w.zones[0]}, []int{0}); err == nil {
		t.Error("POI index out of range should fail")
	}
}

// assignZones maps each POI to its nearest zone by linear scan.
func assignZones(zones []geo.Point, pois []geo.Point) []int {
	out := make([]int, len(pois))
	for j, p := range pois {
		best, bestD := 0, math.Inf(1)
		for i, z := range zones {
			if d := geo.DistanceMeters(z, p); d < bestD {
				bestD = d
				best = i
			}
		}
		out[j] = best
	}
	return out
}

func BenchmarkPairVector(b *testing.B) {
	w := fixture(b)
	e, err := NewExtractor(w.forest, w.zones, w.isos, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := i % len(w.zones)
		d := (i*17 + 3) % len(w.zones)
		if _, err := e.PairVector(o, w.zones[d], d); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPairVectorConcurrent exercises the lazy caches (hop counts, reach
// fractions, inbound KD-trees) from several goroutines on a cold
// extractor: a serving layer's worker pool shares one Extractor across
// concurrent engine runs. Run with -race this is the cache-synchronization
// regression test.
func TestPairVectorConcurrent(t *testing.T) {
	e := newExtractor(t) // cold caches
	w := fixture(t)
	nz := len(w.zones)
	const goroutines = 4
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine walks the pairs in a different order so cache
			// misses collide, yielding every iteration so the accesses
			// interleave even on GOMAXPROCS=1.
			for i := 0; i < nz; i++ {
				origin := (i + g*nz/goroutines) % nz
				dest := (origin*7 + g + 1) % nz
				if _, err := e.PairVector(origin, w.zones[dest], dest); err != nil {
					errs[g] = err
					return
				}
				runtime.Gosched()
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	// Fully warmed caches must agree with a serial recomputation.
	serial, err := NewExtractor(w.forest, w.zones, w.isos, 2)
	if err != nil {
		t.Fatal(err)
	}
	for origin := 0; origin < nz; origin++ {
		dest := (origin*7 + 1) % nz
		want, err := serial.PairVector(origin, w.zones[dest], dest)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.PairVector(origin, w.zones[dest], dest)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("origin %d feature %d: concurrent %v != serial %v", origin, j, got[j], want[j])
			}
		}
	}
}

// TestVectorIntoAllocFree pins the warm-path contract of the Into
// extractors: once the per-zone caches are primed, neither PairVectorInto
// nor OriginVectorInto allocates — the property the engine's pooled
// feature stage depends on.
func TestVectorIntoAllocFree(t *testing.T) {
	w := fixture(t)
	e := newExtractor(t)
	pois := w.city.POIs[synth.POIVaxCenter]
	poiPts := make([]geo.Point, len(pois))
	for j, p := range pois {
		poiPts[j] = p.Point
	}
	poiZone := assignZones(w.zones, poiPts)
	m, err := todam.Build(todam.Spec{
		ZonePts: w.zones, POIPts: poiPts,
		Interval:       gtfs.Interval{Start: 7 * 3600, End: 9 * 3600, Day: time.Tuesday},
		SamplesPerHour: 10, Attractiveness: todam.DefaultAttractiveness(), Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, Dim)
	s := GetScratch()
	defer PutScratch(s)
	destZone := len(w.zones) - 1
	dest := w.zones[destZone]
	if err := e.PairVectorInto(dst, 0, dest, destZone, s); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := e.PairVectorInto(dst, 0, dest, destZone, s); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("warm PairVectorInto allocates %.1f objects/op, want 0", n)
	}
	// Pick a zone whose TODAM row is non-empty so the full POI aggregation
	// path runs, not the empty-row fallback.
	zone := 0
	for z := 0; z < len(w.zones); z++ {
		if len(m.Row(z)) > 0 {
			zone = z
			break
		}
	}
	row := m.Row(zone)
	if err := e.OriginVectorInto(dst, s, zone, row, poiPts, poiZone); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := e.OriginVectorInto(dst, s, zone, row, poiPts, poiZone); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("warm OriginVectorInto allocates %.1f objects/op, want 0", n)
	}
}
