package features

import "accessquery/internal/obs"

// Feature-extraction metrics. The extractor's lazy caches (per-origin hop
// maps, reach fractions, per-destination inbound KD-trees) amortize most of
// the online feature cost; the hit/miss counters make that amortization —
// and a cold extractor after restart — visible to an operator.
var (
	mPairVectors = obs.Counter("aq_features_pair_vectors_total")
	mCacheHits   = obs.Counter("aq_features_cache_hits_total")
	mCacheMisses = obs.Counter("aq_features_cache_misses_total")
)

func init() {
	obs.Default.SetHelp("aq_features_pair_vectors_total", "OD pair feature vectors computed.")
	obs.Default.SetHelp("aq_features_cache_hits_total", "Extractor lazy-cache hits (hop maps, reach fractions, inbound KD-trees).")
	obs.Default.SetHelp("aq_features_cache_misses_total", "Extractor lazy-cache misses that computed a fresh value.")
}
