package features

// SeedFrom copies lazy-cache entries from src into e for the entries an
// incremental forest rebuild provably left unchanged, so a scenario-derived
// engine starts with a warm cache instead of recomputing values that are
// bit-identical to the old ones. rebuilt lists the zones whose hop trees
// were rebuilt; every other zone's trees are shared with src's forest.
//
// Safe entries:
//   - ibTrees[z]: derived only from the inbound tree of z — valid unless z
//     was rebuilt.
//   - hopsTo[origin] and reachFrac[origin]: derived by chaining outbound
//     trees from origin. Copied only when no zone anywhere in the cached
//     hop map was rebuilt; a rebuilt zone inside the chain could alter the
//     frontier, and a rebuilt tree can only surface new zones through some
//     rebuilt member of the old map, so this conservative gate is sound.
//
// Cached values are deterministic functions of the forest, so entries that
// fail the gate are simply recomputed lazily (or by Warm) with no effect on
// query results. Returns how many entries were copied and how many src
// entries were dropped as potentially stale.
func (e *Extractor) SeedFrom(src *Extractor, rebuilt []int) (seeded, dropped int) {
	if src == nil {
		return 0, 0
	}
	stale := make(map[int]bool, len(rebuilt))
	for _, z := range rebuilt {
		stale[z] = true
	}
	src.mu.RLock()
	defer src.mu.RUnlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	for z, t := range src.ibTrees {
		if stale[z] {
			dropped++
			continue
		}
		e.ibTrees[z] = t
		seeded++
	}
	for origin, hops := range src.hopsTo {
		ok := true
		for z := range hops {
			if stale[z] {
				ok = false
				break
			}
		}
		if !ok {
			dropped++
			continue
		}
		e.hopsTo[origin] = hops
		seeded++
		if f, has := src.reachFrac[origin]; has {
			e.reachFrac[origin] = f
			seeded++
		}
	}
	return seeded, dropped
}
