package features

// SeedFrom copies lazy-cache entries from src into e for the entries an
// incremental forest rebuild provably left unchanged, so a scenario-derived
// engine starts with a warm cache instead of recomputing values that are
// bit-identical to the old ones. rebuilt lists the zones whose hop trees
// were rebuilt; every other zone's trees are shared with src's forest.
//
// Safe entries:
//   - ibTrees[z]: derived only from the inbound tree of z — valid unless z
//     was rebuilt.
//   - hopsTo[origin] and reachFrac[origin]: derived by chaining outbound
//     trees from origin. Copied only when no zone reachable in the cached
//     hop row was rebuilt; a rebuilt zone inside the chain could alter the
//     frontier, and a rebuilt tree can only surface new zones through some
//     rebuilt member of the old row, so this conservative gate is sound.
//
// Cached values are deterministic functions of the forest, so entries that
// fail the gate are simply recomputed lazily (or by Warm) with no effect on
// query results. Returns how many entries were copied and how many src
// entries were dropped as potentially stale.
func (e *Extractor) SeedFrom(src *Extractor, rebuilt []int) (seeded, dropped int) {
	if src == nil || len(src.zones) != len(e.zones) {
		return 0, 0
	}
	stale := make([]bool, len(e.zones))
	for _, z := range rebuilt {
		if z >= 0 && z < len(stale) {
			stale[z] = true
		}
	}
	src.mu.RLock()
	defer src.mu.RUnlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	for z, t := range src.ibTrees {
		if t == nil {
			continue
		}
		if stale[z] {
			dropped++
			continue
		}
		e.ibTrees[z] = t
		seeded++
	}
	for origin, hops := range src.hopsTo {
		if hops == nil {
			continue
		}
		ok := true
		for z, h := range hops {
			if h >= 0 && stale[z] {
				ok = false
				break
			}
		}
		if !ok {
			dropped++
			continue
		}
		e.hopsTo[origin] = hops
		seeded++
		if f := src.reachFrac[origin]; f >= 0 {
			e.reachFrac[origin] = f
			seeded++
		}
	}
	return seeded, dropped
}
