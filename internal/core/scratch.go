package core

import (
	"sync"

	"accessquery/internal/features"
)

// queryScratch is the per-query arena for the feature-generation stage:
// one flat backing array holds every zone's feature vector (one allocation
// instead of one per zone) and the row-slice headers over it. Pooled so a
// warm server reuses the arrays across queries. The router and feature
// extractor keep their own pools (profileArena, features.Scratch) for the
// structures whose lifetime is a single zone or profile rather than a
// query.
type queryScratch struct {
	flat      []float64
	vecs      [][]float64
	isLabeled []bool
}

var queryScratchPool = sync.Pool{New: func() interface{} { return new(queryScratch) }}

// getQueryScratch returns an arena sized for nz zones with every vector
// row zeroed and isLabeled cleared.
func getQueryScratch(nz int) *queryScratch {
	s := queryScratchPool.Get().(*queryScratch)
	dim := features.Dim
	if cap(s.flat) >= nz*dim {
		s.flat = s.flat[:nz*dim]
	} else {
		s.flat = make([]float64, nz*dim)
	}
	if cap(s.vecs) >= nz {
		s.vecs = s.vecs[:nz]
	} else {
		s.vecs = make([][]float64, nz)
	}
	for z := 0; z < nz; z++ {
		s.vecs[z] = s.flat[z*dim : (z+1)*dim : (z+1)*dim]
	}
	if cap(s.isLabeled) >= nz {
		s.isLabeled = s.isLabeled[:nz]
		clear(s.isLabeled)
	} else {
		s.isLabeled = make([]bool, nz)
	}
	return s
}

// release returns the arena to the pool. The caller must not retain any
// row slice: training copies rows into matrices (mat.FromRows), so by the
// time a query returns nothing references the backing array.
func (s *queryScratch) release() {
	queryScratchPool.Put(s)
}
