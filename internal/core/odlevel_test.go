package core

import (
	"math"
	"testing"

	"accessquery/internal/metrics"
)

func TestRunODProducesMeasures(t *testing.T) {
	e := engine(t)
	res, err := e.RunOD(vaxQuery(e, ModelOLS, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	var valid, labeled int
	for i := range res.Valid {
		if res.Valid[i] {
			valid++
			if res.MAC[i] < 0 || math.IsNaN(res.MAC[i]) {
				t.Errorf("zone %d MAC = %f", i, res.MAC[i])
			}
			if res.ACSD[i] < 0 || math.IsNaN(res.ACSD[i]) {
				t.Errorf("zone %d ACSD = %f", i, res.ACSD[i])
			}
		}
		if res.Labeled[i] {
			labeled++
		}
	}
	if valid < len(e.City.Zones)/2 {
		t.Errorf("only %d zones valid", valid)
	}
	if labeled == 0 {
		t.Error("no labeled zones")
	}
	if res.Timing.SPQs <= 0 {
		t.Error("no SPQs counted")
	}
}

func TestRunODValidation(t *testing.T) {
	e := engine(t)
	q := vaxQuery(e, ModelGNN, 0.2)
	if _, err := e.RunOD(q); err == nil {
		t.Error("GNN at OD granularity should fail")
	}
	q = vaxQuery(e, ModelOLS, 0)
	if _, err := e.RunOD(q); err == nil {
		t.Error("zero budget should fail")
	}
	if _, err := e.RunOD(Query{Budget: 0.2}); err == nil {
		t.Error("no POIs should fail")
	}
}

func TestRunODLabeledZonesMatchZoneLevelMAC(t *testing.T) {
	// For labeled zones, OD-level MAC is the alpha-weighted mean of pair
	// means; zone-level MAC is the plain mean over trips. They agree when
	// every pair samples trips proportionally to alpha — approximately, so
	// allow slack but demand strong correlation.
	e := engine(t)
	q := vaxQuery(e, ModelOLS, 0.4)
	zoneRes, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	odRes, err := e.RunOD(q)
	if err != nil {
		t.Fatal(err)
	}
	var a, b []float64
	for i := range zoneRes.MAC {
		if zoneRes.Labeled[i] && odRes.Labeled[i] {
			a = append(a, zoneRes.MAC[i])
			b = append(b, odRes.MAC[i])
		}
	}
	if len(a) < 5 {
		t.Skipf("only %d zones labeled in both runs", len(a))
	}
	r, err := metrics.Pearson(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.95 {
		t.Errorf("labeled-zone MAC correlation between granularities = %f", r)
	}
}

func TestRunODCorrelatesWithGroundTruth(t *testing.T) {
	e := engine(t)
	q := vaxQuery(e, ModelMLP, 0.3)
	gt, err := e.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	od, err := e.RunOD(q)
	if err != nil {
		t.Fatal(err)
	}
	var pred, truth []float64
	for i := range od.MAC {
		if od.Valid[i] && gt.Valid[i] && !od.Labeled[i] {
			pred = append(pred, od.MAC[i])
			truth = append(truth, gt.MAC[i])
		}
	}
	if len(pred) < 10 {
		t.Fatalf("only %d comparable zones", len(pred))
	}
	r, err := metrics.Pearson(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.5 {
		t.Errorf("OD-level MAC correlation = %f, want > 0.5", r)
	}
}
