package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"accessquery/internal/bank"
	"accessquery/internal/fault"
	"accessquery/internal/synth"
)

// TestBankParallelMatchesUnbanked pins the tentpole's correctness contract:
// a bank-enabled run must be deep-equal to a bank-disabled run — cold or
// warm, serial or 4-worker labeling. The bank stores journeys and the
// labeler re-prices them through the SPQ code path, so any divergence here
// means a price was cached instead of a journey.
func TestBankParallelMatchesUnbanked(t *testing.T) {
	e := equalityEngine(t, 2)
	q := Query{
		POIs:           POIsOf(e.City, synth.POISchool),
		Budget:         0.2,
		Model:          ModelOLS,
		SamplesPerHour: 8,
		Seed:           7,
	}
	for _, workers := range []int{1, 4} {
		qq := q
		qq.Workers = workers
		plain, err := e.Run(qq)
		if err != nil {
			t.Fatal(err)
		}
		seg := bank.New(bank.Config{}).Segment(e.City.Name, 1)
		qb := qq
		qb.Bank = seg
		cold, err := e.Run(qb)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, plain, cold, fmt.Sprintf("workers=%d cold bank", workers))
		warm, err := e.Run(qb)
		if err != nil {
			t.Fatal(err)
		}
		// sameResult checks SPQs too, but a warm run answers from the bank;
		// compare everything else and pin the SPQ saving separately.
		warm.Timing.SPQs = plain.Timing.SPQs
		sameResult(t, plain, warm, fmt.Sprintf("workers=%d warm bank", workers))
		st := seg.Key()
		if st.City != e.City.Name || st.Epoch != 1 {
			t.Errorf("segment key = %+v, want {%s 1}", st, e.City.Name)
		}
	}
}

// TestBankWarmRepeatAndOverlapSavesSPQs is the perf acceptance criterion:
// an exact repeat answers (nearly) entirely from the bank, and a
// higher-budget overlapping query — whose random labeled set is a superset
// of the warm one, both being prefixes of the same seeded permutation —
// prices at least 2x fewer trips than it would cold.
func TestBankWarmRepeatAndOverlapSavesSPQs(t *testing.T) {
	e := engine(t)
	seg := bank.New(bank.Config{}).Segment(e.City.Name, 1)
	run := func(budget float64) *Result {
		t.Helper()
		q := vaxQuery(e, ModelOLS, budget)
		q.Bank = seg
		res, err := e.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := run(0.15)
	if cold.Timing.SPQs == 0 {
		t.Fatal("cold run priced nothing")
	}
	repeat := run(0.15)
	if repeat.Timing.SPQs != 0 {
		t.Errorf("exact repeat priced %d SPQs, want 0 (all drained)", repeat.Timing.SPQs)
	}
	overlap := run(0.3)
	// The overlap run's cold cost is what it priced plus what it drained.
	drained := overlap.Timing.BankDrained
	coldCost := overlap.Timing.SPQs + drained
	if drained == 0 {
		t.Fatal("overlap run drained nothing from a warm bank")
	}
	if overlap.Timing.SPQs*2 > coldCost {
		t.Errorf("overlap run priced %d of %d trips, want at least 2x fewer SPQs",
			overlap.Timing.SPQs, coldCost)
	}
}

// TestBankDeadlineMidZoneNoDeposit pins the deposit policy under deadline
// pressure: a run truncated mid-labeling must not deposit its partial
// drain into the bank (partially labeled zones would otherwise poison
// later queries with a half-priced pool), while the degradation ladder
// still reports the effective budget actually achieved.
func TestBankDeadlineMidZoneNoDeposit(t *testing.T) {
	e := engine(t)
	slowSPQs(t, 50*time.Millisecond)
	b := bank.New(bank.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	q := vaxQuery(e, ModelMLP, 0.3)
	q.Bank = b.Segment(e.City.Name, 1)
	res, err := e.RunContext(ctx, q)
	if err != nil {
		t.Fatalf("mid-labeling deadline failed the run instead of degrading: %v", err)
	}
	if res.Degraded == nil || !res.Degraded.Has(RungPartial) {
		t.Fatalf("rungs = %v, want partial", res.Degraded)
	}
	st := b.Stats()
	if st.Deposits != 0 || st.Entries != 0 {
		t.Errorf("truncated run deposited %d entries (%d deposits), want none",
			st.Entries, st.Deposits)
	}
	labeled := 0
	for _, l := range res.Labeled {
		if l {
			labeled++
		}
	}
	want := float64(labeled) / float64(len(res.Labeled))
	if got := res.Degraded.BudgetEffective; got != want {
		t.Errorf("BudgetEffective = %g, want labeled share %g", got, want)
	}
	if res.Degraded.BudgetEffective > res.Degraded.BudgetRequested {
		t.Errorf("effective budget %g above requested %g",
			res.Degraded.BudgetEffective, res.Degraded.BudgetRequested)
	}
}

// TestChaosWarmBankAccounting extends the chaos accounting identity to the
// warm-bank labeling path: after a clean run warms the segment, a faulty
// higher-budget run must still reconcile retries + abandons against the
// injector exactly — drained trips never mask or double-count a fault —
// and a fault-degraded run must not deposit.
func TestChaosWarmBankAccounting(t *testing.T) {
	e := engine(t)
	prev := fault.Enable(nil)
	t.Cleanup(func() { fault.Enable(prev) })

	b := bank.New(bank.Config{})
	seg := b.Segment(e.City.Name, 1)
	warmQ := vaxQuery(e, ModelOLS, 0.15)
	warmQ.Bank = seg
	if _, err := e.RunContext(context.Background(), warmQ); err != nil {
		t.Fatal(err)
	}
	warmed := b.Stats().Entries
	if warmed == 0 {
		t.Fatal("clean warm run deposited nothing")
	}

	for name, workers := range map[string]int{"serial": 1, "parallel": 4} {
		spec, err := fault.ParseSpec("seed=11;spq:fail=0.2")
		if err != nil {
			t.Fatal(err)
		}
		inj := fault.New(spec)
		fault.Enable(inj)
		before := b.Stats().Entries
		q := vaxQuery(e, ModelOLS, 0.3)
		q.Bank = seg
		q.Workers = workers
		res, err := e.RunContext(context.Background(), q)
		if err != nil {
			t.Fatalf("%s: warm-bank chaos run failed instead of degrading: %v", name, err)
		}
		if res.Timing.BankDrained == 0 {
			t.Errorf("%s: chaos run on a warm bank drained nothing", name)
		}
		injected := inj.Counts()[fault.SiteSPQ]
		if got := res.Timing.SPQRetries + res.Timing.SPQAbandoned; got != injected {
			t.Errorf("%s: %d faults injected but %d retried + %d abandoned",
				name, injected, res.Timing.SPQRetries, res.Timing.SPQAbandoned)
		}
		if d := res.Degraded; d != nil && (d.ZonesFailed > 0 || d.ZonesTruncated > 0) {
			if after := b.Stats().Entries; after != before {
				t.Errorf("%s: fault-degraded run changed the bank (%d -> %d entries)",
					name, before, after)
			}
		}
	}
	fault.Disable()
}
