package core

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	e := engine(t)
	res, err := e.Run(vaxQuery(e, ModelOLS, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf, e); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) < 2 {
		t.Fatal("no data rows")
	}
	if got := strings.Join(records[0], ","); got != "zone,lat,lon,mac_seconds,acsd_seconds,class,labeled" {
		t.Errorf("header = %q", got)
	}
	var valid int
	for _, ok := range res.Valid {
		if ok {
			valid++
		}
	}
	if len(records)-1 != valid {
		t.Errorf("rows = %d, valid zones = %d", len(records)-1, valid)
	}
	// Every data row has 7 fields and a known class.
	classes := map[string]bool{"best": true, "mostly good": true, "mostly bad": true, "worst": true}
	for i, rec := range records[1:] {
		if len(rec) != 7 {
			t.Fatalf("row %d has %d fields", i, len(rec))
		}
		if !classes[rec[5]] {
			t.Errorf("row %d class %q", i, rec[5])
		}
	}
}

func TestWriteCSVValidation(t *testing.T) {
	e := engine(t)
	res, err := e.Run(vaxQuery(e, ModelOLS, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf, nil); err == nil {
		t.Error("nil engine should fail")
	}
	short := &Result{MAC: []float64{1}}
	if err := short.WriteCSV(&buf, e); err == nil {
		t.Error("mismatched result should fail")
	}
}

func TestSummarize(t *testing.T) {
	e := engine(t)
	res, err := e.Run(vaxQuery(e, ModelMLP, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summarize()
	if s.Zones != len(e.City.Zones) {
		t.Errorf("zones = %d", s.Zones)
	}
	if s.ValidZones == 0 || s.LabeledZones == 0 {
		t.Errorf("valid=%d labeled=%d", s.ValidZones, s.LabeledZones)
	}
	if s.MeanMAC <= 0 {
		t.Errorf("mean MAC = %f", s.MeanMAC)
	}
	if s.Gini < 0 || s.Gini > 1 {
		t.Errorf("gini = %f", s.Gini)
	}
	var classTotal int
	for _, c := range s.ClassCounts {
		classTotal += c
	}
	if classTotal != s.ValidZones {
		t.Errorf("class counts sum to %d, valid %d", classTotal, s.ValidZones)
	}
	if s.SPQs != res.Timing.SPQs {
		t.Errorf("SPQs = %d", s.SPQs)
	}
}
