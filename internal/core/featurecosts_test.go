package core

import (
	"testing"

	"accessquery/internal/synth"
)

func TestFeatureCosts(t *testing.T) {
	e := engine(t)
	q := vaxQuery(e, ModelOLS, 0.1)
	origin, od, rows, err := e.FeatureCosts(q)
	if err != nil {
		t.Fatal(err)
	}
	if origin <= 0 || od <= 0 {
		t.Errorf("durations: origin=%v od=%v", origin, od)
	}
	if rows <= 0 {
		t.Error("no OD rows")
	}
	// OD rows cannot exceed zones x POIs.
	max := len(e.City.Zones) * len(e.City.POIs[synth.POIVaxCenter])
	if rows > max {
		t.Errorf("od rows %d exceeds %d", rows, max)
	}
}

func TestFeatureCostsNoPOIs(t *testing.T) {
	e := engine(t)
	if _, _, _, err := e.FeatureCosts(Query{Budget: 0.1}); err == nil {
		t.Error("no POIs should fail")
	}
}
