// Package core implements the paper's end-to-end solution (Fig. 1): offline
// pre-processing (walking isochrones and transit-hop trees), dynamic
// construction of the gravity-gated TODAM, budgeted labeling with multimodal
// shortest-path queries, online feature generation, semi-supervised
// regression, and inference of the zone-level access measures that answer
// dynamic access queries.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"accessquery/internal/access"
	"accessquery/internal/fault"
	"accessquery/internal/features"
	"accessquery/internal/geo"
	"accessquery/internal/graph"
	"accessquery/internal/gtfs"
	"accessquery/internal/hoptree"
	"accessquery/internal/isochrone"
	"accessquery/internal/mat"
	"accessquery/internal/ml"
	"accessquery/internal/obs"
	"accessquery/internal/par"
	"accessquery/internal/router"
	"accessquery/internal/spatial"
	"accessquery/internal/synth"
	"accessquery/internal/todam"
)

// ModelKind selects the SSR model for a query.
type ModelKind string

// The models evaluated in the paper.
const (
	ModelOLS   ModelKind = "OLS"
	ModelMLP   ModelKind = "MLP"
	ModelMT    ModelKind = "MT"
	ModelCOREG ModelKind = "COREG"
	ModelGNN   ModelKind = "GNN"
)

// Extension models beyond the paper's five: kernel ridge regression and
// Laplacian-regularized least squares (classical manifold-regularization
// SSR, the family the paper's deep-kernel baseline reference builds on).
const (
	ModelKRR    ModelKind = "KRR"
	ModelLapRLS ModelKind = "LAPRLS"
)

// AllModels lists the paper's evaluated models in report order.
var AllModels = []ModelKind{ModelOLS, ModelMT, ModelCOREG, ModelMLP, ModelGNN}

// ExtensionModels lists the additional models this implementation
// provides.
var ExtensionModels = []ModelKind{ModelKRR, ModelLapRLS}

// EngineOptions configure offline pre-processing.
type EngineOptions struct {
	// Interval is the time interval v the engine serves (e.g. weekday AM
	// peak).
	Interval gtfs.Interval
	// TauSeconds is the acceptable walk time for isochrones; default 600.
	TauSeconds float64
	// Hops is the transit-hop chaining depth h; default 2.
	Hops int
	// RouterOptions tune the labeling SPQs.
	RouterOptions router.Options
	// Parallelism fans the embarrassingly-parallel per-zone pre-processing
	// stages (isochrone Dijkstras, hop-tree generation, feature-cache
	// warming) across a worker pool, and is the default worker count for a
	// query's feature stage when Query.Parallelism is unset. Values <= 1
	// run serially. Outputs are bit-identical at any setting; servers and
	// CLIs default it to runtime.GOMAXPROCS(0).
	Parallelism int
}

// Engine holds the pre-processed structures for one city and time interval.
type Engine struct {
	City     *synth.City
	Interval gtfs.Interval

	zonePts   []geo.Point
	isos      *isochrone.Set
	forest    *hoptree.Forest
	extractor *features.Extractor
	router    *router.Router

	// zoneTree and roadTree index the zone centroids and road nodes. They
	// are built once here so buildMatrix stops paying an O(road nodes)
	// KD-tree construction on every query (the road tree dominates: a city
	// has orders of magnitude more road nodes than zones or POIs).
	zoneTree *spatial.KDTree
	roadTree *spatial.KDTree

	// parallelism is the engine-level worker knob, the fallback for queries
	// that leave Query.Parallelism unset.
	parallelism int

	// snapSrc records the snapshot file this engine was restored from, nil
	// for engines built from scratch. It also keeps the file mapping alive
	// when the forest and isochrone sections are served via mmap, so it is
	// copied to derived engines, which share those structures.
	snapSrc *SnapshotSource

	// routerOpts are kept so Derive can rebuild the router over a mutated
	// timetable with the same tuning.
	routerOpts router.Options

	// Scenario, when non-nil, records that this engine was derived from a
	// baseline by incremental delta maintenance and carries the cumulative
	// blast-radius summary for provenance (explain output, span attrs).
	Scenario *ScenarioSummary

	// PrepDuration records offline pre-processing time (not part of the
	// online query cost in Table II).
	PrepDuration time.Duration

	// adjMu guards adjCache: concurrent queries (e.g. from a serving
	// layer's worker pool) may race to build the GNN adjacency.
	adjMu    sync.Mutex
	adjCache *ml.SparseAdj
}

// NewEngine runs the offline phase over a city: welding checks, walking
// isochrones for every zone, transit-hop forest generation, and router
// construction.
func NewEngine(city *synth.City, opts EngineOptions) (*Engine, error) {
	if city == nil {
		return nil, fmt.Errorf("core: nil city")
	}
	if opts.Interval.End <= opts.Interval.Start {
		return nil, fmt.Errorf("core: empty interval")
	}
	tau := opts.TauSeconds
	if tau <= 0 {
		tau = isochrone.DefaultTauSeconds
	}
	hops := opts.Hops
	if hops <= 0 {
		hops = 2
	}
	workers := par.Workers(opts.Parallelism)
	mParallelism.Set(float64(workers))
	start := time.Now()
	zonePts := make([]geo.Point, len(city.Zones))
	nodes := make([]graph.NodeID, len(city.Zones))
	for i, z := range city.Zones {
		zonePts[i] = z.Centroid
		nodes[i] = city.ZoneNode[i]
	}
	t0 := time.Now()
	isos, err := isochrone.ComputeSetParallel(city.Road, zonePts, nodes, tau, workers)
	if err != nil {
		return nil, fmt.Errorf("core: isochrones: %w", err)
	}
	prepIsochrones.ObserveDuration(time.Since(t0))
	builder, err := hoptree.NewBuilder(city.Feed, opts.Interval, zonePts, isos)
	if err != nil {
		return nil, fmt.Errorf("core: hop trees: %w", err)
	}
	// Chaos-test injection site for the offline hop-tree build.
	if err := fault.Check(fault.SiteHopTree); err != nil {
		return nil, fmt.Errorf("core: hop trees: %w", err)
	}
	t0 = time.Now()
	forest, err := hoptree.BuildForestParallel(builder, workers)
	if err != nil {
		return nil, fmt.Errorf("core: hop trees: %w", err)
	}
	prepHopTrees.ObserveDuration(time.Since(t0))
	extractor, err := features.NewExtractor(forest, zonePts, isos, hops)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	ix := gtfs.NewIndex(city.Feed, opts.Interval.Day)
	rt, err := router.New(city.Road, ix, city.StopNode, opts.RouterOptions)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	t0 = time.Now()
	zoneTree, roadTree := buildSpatialIndexes(city, zonePts)
	prepIndexes.ObserveDuration(time.Since(t0))
	e := &Engine{
		City:        city,
		Interval:    opts.Interval,
		zonePts:     zonePts,
		isos:        isos,
		forest:      forest,
		extractor:   extractor,
		router:      rt,
		zoneTree:    zoneTree,
		roadTree:    roadTree,
		parallelism: workers,
		routerOpts:  opts.RouterOptions,
	}
	e.PrepDuration = time.Since(start)
	prepTotal.ObserveDuration(e.PrepDuration)
	return e, nil
}

// buildSpatialIndexes constructs the zone-centroid and road-node KD-trees
// that buildMatrix previously rebuilt on every query.
func buildSpatialIndexes(city *synth.City, zonePts []geo.Point) (zoneTree, roadTree *spatial.KDTree) {
	items := make([]spatial.Item, len(zonePts))
	for i, p := range zonePts {
		items[i] = spatial.Item{ID: i, Point: p}
	}
	zoneTree = spatial.NewKDTree(items)
	roadItems := make([]spatial.Item, city.Road.NumNodes())
	for i := range roadItems {
		roadItems[i] = spatial.Item{ID: i, Point: city.Road.Point(graph.NodeID(i))}
	}
	roadTree = spatial.NewKDTree(roadItems)
	return zoneTree, roadTree
}

// zonePointsOf extracts zone centroids in index order.
func zonePointsOf(city *synth.City) []geo.Point {
	pts := make([]geo.Point, len(city.Zones))
	for i, z := range city.Zones {
		pts[i] = z.Centroid
	}
	return pts
}

// Forest exposes the transit-hop forest (for persistence and inspection).
func (e *Engine) Forest() *hoptree.Forest { return e.forest }

// WarmFeatureCaches populates the extractor's lazy caches (per-origin hop
// maps and reach fractions, per-destination inbound KD-trees) for every
// zone across a worker pool, moving first-query cache misses into startup.
// Cached values are deterministic, so warming never changes query results.
func (e *Engine) WarmFeatureCaches(workers int) {
	e.extractor.Warm(par.Workers(workers))
}

// Router exposes the multimodal router (for example applications that need
// raw journeys).
func (e *Engine) Router() *router.Router { return e.router }

// Query describes one dynamic access query.
type Query struct {
	// POIs are the destination points. Use POIsOf to pull a category from
	// the city.
	POIs []geo.Point
	// POIWeights, when non-nil, re-weights each POI's attractiveness in the
	// TODAM gravity gate (indexed like POIs). Use POIWeightsOf to pull a
	// category's scenario weights from the city; nil means all 1.
	POIWeights []float64
	// Cost is JT or GAC.
	Cost access.CostKind
	// CostParams price GAC journeys; zero value means defaults.
	CostParams router.CostParams
	// Budget is the labeling budget β in (0, 1].
	Budget float64
	// Model selects the SSR model.
	Model ModelKind
	// SamplesPerHour sets the TODAM start-time rate; default 30 (|R|=60
	// over a 2-hour interval, as in the paper's Table I).
	SamplesPerHour int
	// Attractiveness configures the gravity gate; zero value means
	// defaults.
	Attractiveness todam.Attractiveness
	// Sampling selects how the labeled set is drawn; default SampleRandom
	// (the paper's method). Coverage and stratified sampling implement the
	// active-learning direction the paper's conclusion points to.
	Sampling SamplingStrategy
	// Workers parallelizes labeling across goroutines; 0 or 1 labels
	// serially. Results are identical regardless of worker count.
	Workers int
	// Parallelism fans the per-zone feature stage (step 4) across a worker
	// pool. 0 inherits the engine's Parallelism; values <= 1 after that
	// fallback run serially. Results are identical regardless of the
	// setting, so it deliberately does not participate in serving-layer
	// fingerprints.
	Parallelism int
	// Seed drives sampling and model initialization.
	Seed int64
	// Bank, when non-nil, is the cross-query priced-trip store for this
	// engine generation (see internal/bank): labeling drains it before
	// spending SPQ budget and deposits what it prices after a clean run.
	// Results are identical with or without it, so like Workers and
	// Parallelism it does not participate in serving-layer fingerprints.
	// The caller must hand a segment scoped to the exact engine the query
	// runs on ({city, epoch}); a bank from another generation would serve
	// journeys off a different timetable.
	Bank access.TripBank
}

// Serving-layer defaults, shared with callers (e.g. internal/serve) so a
// request with omitted fields fingerprints identically to one that spells
// the defaults out.
const (
	// DefaultBudget is the labeling budget β used when a query leaves it
	// unset (the paper's headline operating point).
	DefaultBudget = 0.05
	// DefaultSamplesPerHour is the TODAM start-time sampling rate r
	// (|R| = 60 over a 2-hour interval, Table I).
	DefaultSamplesPerHour = 30
)

// POIsOf extracts a category's POI points from the city.
func POIsOf(city *synth.City, cat synth.POICategory) []geo.Point {
	pois := city.POIs[cat]
	out := make([]geo.Point, len(pois))
	for i, p := range pois {
		out[i] = p.Point
	}
	return out
}

// POIWeightsOf extracts a category's scenario POI weights from the city,
// or nil when every weight is the default 1 (the common case — only
// scenario deltas ever set weights, and nil keeps the TODAM spec identical
// to the unweighted one).
func POIWeightsOf(city *synth.City, cat synth.POICategory) []float64 {
	pois := city.POIs[cat]
	weighted := false
	out := make([]float64, len(pois))
	for i, p := range pois {
		w := p.Weight
		if w == 0 {
			w = 1
		}
		if w != 1 {
			weighted = true
		}
		out[i] = w
	}
	if !weighted {
		return nil
	}
	return out
}

func (q Query) withDefaults() Query {
	if q.SamplesPerHour <= 0 {
		q.SamplesPerHour = DefaultSamplesPerHour
	}
	if q.Attractiveness.DecayMeters <= 0 {
		q.Attractiveness = todam.DefaultAttractiveness()
	}
	if q.CostParams == (router.CostParams{}) {
		q.CostParams = router.DefaultCostParams()
	}
	if q.Model == "" {
		q.Model = ModelMLP
	}
	return q
}

// Timing decomposes a query's online cost, the quantities Table II
// compares.
type Timing struct {
	Matrix   time.Duration
	Features time.Duration
	Labeling time.Duration
	Training time.Duration
	// SPQs counts priced trips (shortest-path-query equivalents).
	SPQs int64
	// SPQRetries counts profile searches re-attempted after transient
	// failures; SPQAbandoned counts those given up after the retry cap.
	// Together they account for every transient SPQ failure the run saw.
	SPQRetries   int64
	SPQAbandoned int64
	// BankDrained counts trips answered from the cross-query label bank
	// instead of being priced; always zero when no bank is attached.
	BankDrained int64
}

// Total returns the end-to-end online time.
func (t Timing) Total() time.Duration {
	return t.Matrix + t.Features + t.Labeling + t.Training
}

// Result is the answer to an access query: per-zone measures, with
// Labeled marking zones priced by SPQs (ground truth) versus inferred.
type Result struct {
	MAC     []float64
	ACSD    []float64
	Valid   []bool
	Labeled []bool
	// WalkOnlyShare is the labeled-trips share that used no transit.
	WalkOnlyShare float64
	Classes       []access.Class
	// Fairness is Jain's index over valid zones' MAC.
	Fairness float64
	Timing   Timing
	Matrix   *todam.Matrix
	// Degraded is non-nil when the run climbed the degradation ladder
	// instead of failing under deadline or fault pressure; it reports which
	// rungs fired and why. Successful retries alone do not mark a result
	// degraded — only lost fidelity does.
	Degraded *DegradedReport
	// City and Epoch identify the tenant engine generation that computed
	// the result. The engine itself leaves them zero; a multi-tenant
	// serving layer (serve.RegistryRunner) stamps them after the run so
	// cached and stale answers stay attributable to the exact engine that
	// produced them across hot-swaps.
	City  string `json:"city,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
}

// Run answers a dynamic access query with semi-supervised regression.
func (e *Engine) Run(q Query) (*Result, error) {
	return e.RunContext(context.Background(), q)
}

// RunContext answers a dynamic access query, aborting between zone batches
// when ctx is cancelled so a timed-out or abandoned query stops burning CPU
// mid-SPQ-loop. On cancellation it returns ctx.Err() (possibly wrapped).
//
// Every run feeds the process-wide observability registry: per-stage
// latency histograms, the end-to-end query histogram, and SPQ counters.
// When ctx carries an obs.Trace (see obs.WithTrace), the run also builds a
// span tree — a "query" span with one attributed child per pipeline stage —
// for per-request explain reports. Without a trace the same code path
// allocates nothing extra.
func (e *Engine) RunContext(ctx context.Context, q Query) (*Result, error) {
	mQueries.Inc()
	qd := q.withDefaults()
	ctx, sp := obs.Start(ctx, "query", mQuerySeconds)
	sp.SetString("model", string(qd.Model))
	sp.SetString("cost", qd.Cost.String())
	sp.SetInt("zones", int64(len(e.zonePts)))
	sp.SetInt("pois", int64(len(q.POIs)))
	sp.SetFloat("budget", qd.Budget)
	res, err := e.runContext(ctx, qd)
	if err != nil {
		sp.SetString("error", err.Error())
	}
	if res != nil && res.Degraded != nil {
		sp.SetBool("degraded", true)
		sp.SetString("degraded_rungs", res.Degraded.String())
	}
	if res != nil && res.Timing.SPQRetries > 0 {
		sp.SetInt("spq_retries", res.Timing.SPQRetries)
	}
	sp.End()
	if err != nil {
		mQueryErrors.Inc()
	} else {
		mSPQs.Add(res.Timing.SPQs)
	}
	return res, err
}

// Degradation-ladder tuning.
const (
	// spqMaxAttempts bounds transient-failure retries per profile search.
	spqMaxAttempts = 3
	// labelingDeadlineShare is the percentage of the deadline budget
	// labeling may consume before being truncated, reserving the tail for
	// feature generation and training.
	labelingDeadlineShare = 65
	// trainingMinSharePct is the minimum percentage of the deadline that
	// must remain when training starts for an iterative model to be worth
	// fitting; below it the run falls back to OLS.
	trainingMinSharePct = 25
)

func (e *Engine) runContext(ctx context.Context, q Query) (*Result, error) {
	q = q.withDefaults()
	if len(q.POIs) == 0 {
		return nil, fmt.Errorf("core: query has no POIs")
	}
	if q.Budget <= 0 || q.Budget > 1 {
		return nil, fmt.Errorf("core: budget %f outside (0, 1]", q.Budget)
	}
	// An unknown model is a caller mistake, not infrastructure trouble; it
	// must fail fast here rather than be absorbed by the OLS fallback rung.
	switch q.Model {
	case ModelOLS, ModelMLP, ModelMT, ModelCOREG, ModelGNN, ModelKRR, ModelLapRLS:
	default:
		return nil, fmt.Errorf("core: unknown model %q", q.Model)
	}
	nz := len(e.zonePts)
	res := &Result{
		MAC:     make([]float64, nz),
		ACSD:    make([]float64, nz),
		Valid:   make([]bool, nz),
		Labeled: make([]bool, nz),
	}

	// Deadline pressure: labeling — the dominant cost — gets the head of
	// the budget and is truncated at stopBy; the tail is reserved for
	// features and training. With no deadline both times stay zero and the
	// ladder never fires.
	var deadline, stopBy time.Time
	var dlTotal time.Duration
	if dl, ok := ctx.Deadline(); ok {
		deadline = dl
		dlTotal = time.Until(dl)
		stopBy = time.Now().Add(dlTotal * labelingDeadlineShare / 100)
	}
	var deg *DegradedReport
	degrade := func(r DegradationRung, reason string) {
		if deg == nil {
			deg = &DegradedReport{BudgetRequested: q.Budget, ModelRequested: string(q.Model)}
		}
		if !deg.Has(r) {
			degradedCounter(r, e.City.Name).Inc()
		}
		deg.fire(r, reason)
	}

	// 1. Gravity TODAM.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, sp := obs.Start(ctx, "matrix", stageMatrix)
	m, poiNodes, poiZones, err := e.buildMatrix(q)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.SetInt("trips", m.Size())
	sp.SetInt("full_trips", m.FullSize())
	sp.SetFloat("reduction_pct", m.Reduction())
	sp.SetInt("zones", int64(nz))
	sp.SetInt("pois", int64(len(q.POIs)))
	sp.SetInt("samples_per_hour", int64(q.SamplesPerHour))
	res.Matrix = m
	res.Timing.Matrix = sp.End()

	// 2. Sample L by budget and strategy.
	_, sp = obs.Start(ctx, "sampling", stageSampling)
	nl := int(float64(nz)*q.Budget + 0.5)
	if nl < 2 {
		nl = 2
	}
	if nl > nz {
		nl = nz
	}
	strategy := q.Sampling
	if strategy == "" {
		strategy = SampleRandom
	}
	sp.SetFloat("budget", q.Budget)
	sp.SetString("strategy", string(strategy))
	sp.SetInt("requested", int64(nl))
	sp.SetInt("seed", q.Seed)
	labeledSet, err := sampleZones(q.Sampling, e.zonePts, nl, q.Seed)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.End()

	// 3. Label L.
	_, sp = obs.Start(ctx, "labeling", stageLabeling)
	lo, err := e.labelZones(ctx, q, m, poiNodes, labeledSet, stopBy)
	sp.SetInt("spqs", lo.spqs)
	sp.SetInt("workers", int64(q.Workers))
	if lo.retries > 0 {
		sp.SetInt("spq_retries", lo.retries)
		mSPQRetries.Add(lo.retries)
	}
	if lo.abandoned > 0 {
		sp.SetInt("spq_abandoned", lo.abandoned)
		mSPQAbandoned.Add(lo.abandoned)
	}
	res.Timing.SPQRetries = lo.retries
	res.Timing.SPQAbandoned = lo.abandoned
	if err != nil {
		sp.End()
		// The SPQs priced before the failure were real router work; count
		// them so aq_engine_spqs_total reflects errored runs too. (The
		// success path is counted once in RunContext.)
		mSPQs.Add(lo.spqs)
		return nil, err
	}
	var xRows, yRows [][]float64
	var walkShareSum float64
	var labeledOK []int
	for i, zone := range labeledSet {
		zm := lo.measures[i]
		if zm == nil {
			continue
		}
		res.MAC[zone] = zm.MAC
		res.ACSD[zone] = zm.ACSD
		res.Valid[zone] = true
		res.Labeled[zone] = true
		walkShareSum += zm.WalkOnlyShare
		labeledOK = append(labeledOK, zone)
		yRows = append(yRows, []float64{zm.MAC, zm.ACSD})
	}
	sp.SetInt("labeled_zones", int64(len(labeledOK)))
	if lo.failed > 0 {
		sp.SetInt("failed_zones", int64(lo.failed))
	}
	if lo.truncated > 0 {
		sp.SetInt("truncated_zones", int64(lo.truncated))
	}
	if len(labeledOK) > 0 {
		sp.SetFloat("walk_only_share", walkShareSum/float64(len(labeledOK)))
	}
	if q.Bank != nil {
		// Deposit only after a full-fidelity stage: a degraded run (failed
		// or truncated zones) may have been shaped by faults or deadline
		// pressure, and nothing it priced is allowed to outlive it.
		var deposited int64
		if lo.failed == 0 && lo.truncated == 0 {
			q.Bank.Deposit(lo.deposits)
			deposited = int64(len(lo.deposits))
		}
		sp.SetBool("bank", true)
		sp.SetInt("bank_drained", lo.drained)
		sp.SetInt("bank_deposited", deposited)
	}
	res.Timing.Labeling = sp.End()
	res.Timing.SPQs = lo.spqs
	res.Timing.BankDrained = lo.drained

	if lo.failed > 0 || lo.truncated > 0 {
		degrade(RungBudget, fmt.Sprintf("labeled %d of %d budgeted zones (%d failed after retries, %d truncated at the deadline)",
			len(labeledOK), len(labeledSet), lo.failed, lo.truncated))
	}
	// finishDegraded stamps the report's accounting once the labeled set is
	// final; partial finalizes a labeled-only result in place of an error.
	finishDegraded := func(modelUsed string) {
		deg.BudgetEffective = float64(len(labeledOK)) / float64(nz)
		deg.ZonesFailed = lo.failed
		deg.ZonesTruncated = lo.truncated
		deg.SPQRetries = lo.retries
		deg.SPQAbandoned = lo.abandoned
		deg.ModelUsed = modelUsed
		res.Degraded = deg
	}
	partial := func(reason string) *Result {
		degrade(RungPartial, reason)
		finishDegraded("")
		if len(labeledOK) > 0 {
			res.WalkOnlyShare = walkShareSum / float64(len(labeledOK))
		}
		e.finishMeasures(res)
		return res
	}

	if len(labeledOK) < 2 {
		if deg != nil {
			return partial(fmt.Sprintf("only %d zones labeled under pressure; skipping inference for the remaining %d",
				len(labeledOK), nz-len(labeledOK))), nil
		}
		return nil, fmt.Errorf("core: only %d labelable zones at budget %.3f; raise the budget", len(labeledOK), q.Budget)
	}
	res.WalkOnlyShare = walkShareSum / float64(len(labeledOK))
	if err := ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return partial("deadline expired before feature generation"), nil
		}
		return nil, err
	}

	// 4. Features for every zone at the origin level, fanned across the
	// query's worker pool. Vectors land in an index-addressed slice and are
	// partitioned into labeled/unlabeled rows in ascending zone order
	// afterwards, so the matrices are bit-identical to the serial loop's
	// regardless of worker scheduling. (labeledSet is sorted, so yRows —
	// appended in labeledSet order above — stay row-aligned with xRows.)
	_, sp = obs.Start(ctx, "features", stageFeatures)
	scratch := getQueryScratch(nz)
	defer scratch.release()
	isLabeled := scratch.isLabeled
	for _, z := range labeledOK {
		isLabeled[z] = true
	}
	vecs := scratch.vecs
	fw := q.Parallelism
	if fw == 0 {
		fw = e.parallelism
	}
	// Snapshot the extractor's lazy-cache counters around the stage so the
	// span carries this query's hit/miss delta (approximate when other
	// queries share the extractor concurrently).
	hits0, misses0 := e.extractor.CacheStats()
	sp.SetInt("zones", int64(nz))
	sp.SetInt("parallelism", int64(fw))
	if err := par.ForContext(ctx, fw, nz, func(zone int) error {
		fs := features.GetScratch()
		err := e.extractor.OriginVectorInto(vecs[zone], fs, zone, m.Row(zone), q.POIs, poiZones)
		features.PutScratch(fs)
		return err
	}); err != nil {
		sp.End()
		if errors.Is(err, context.DeadlineExceeded) {
			return partial("deadline expired during feature generation"), nil
		}
		return nil, err
	}
	hits1, misses1 := e.extractor.CacheStats()
	sp.SetInt("cache_hits", hits1-hits0)
	sp.SetInt("cache_misses", misses1-misses0)
	var unlabeled []int
	var xuRows [][]float64
	for zone := 0; zone < nz; zone++ {
		if isLabeled[zone] {
			xRows = append(xRows, vecs[zone])
		} else {
			unlabeled = append(unlabeled, zone)
			xuRows = append(xuRows, vecs[zone])
		}
	}
	res.Timing.Features = sp.End()

	// 5. Train and infer. Under deadline pressure an iterative model is not
	// worth starting with only the tail of the budget left: fall back to
	// OLS, whose closed-form fit is effectively instant.
	if err := ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return partial("deadline expired before training"), nil
		}
		return nil, err
	}
	modelUsed := q.Model
	if !deadline.IsZero() && modelUsed != ModelOLS {
		if remaining := time.Until(deadline); remaining < dlTotal*trainingMinSharePct/100 {
			degrade(RungModelFallback, fmt.Sprintf("%s of the %s deadline remained at training; fitting OLS instead of %s",
				remaining.Round(time.Millisecond), dlTotal.Round(time.Millisecond), q.Model))
			modelUsed = ModelOLS
		}
	}
	_, sp = obs.Start(ctx, "training", stageTraining)
	sp.SetString("model", string(modelUsed))
	sp.SetInt("labeled_rows", int64(len(xRows)))
	sp.SetInt("unlabeled_rows", int64(len(xuRows)))
	qm := q
	qm.Model = modelUsed
	preds, diag, err := e.trainPredict(qm, labeledOK, unlabeled, xRows, yRows, xuRows)
	if err != nil && modelUsed != ModelOLS {
		// The configured model failed; one rung down, OLS answers the query
		// rather than failing it.
		degrade(RungModelFallback, fmt.Sprintf("%s failed (%v); refitting with OLS", modelUsed, err))
		modelUsed = ModelOLS
		qm.Model = ModelOLS
		sp.SetString("model", string(ModelOLS))
		preds, diag, err = e.trainPredict(qm, labeledOK, unlabeled, xRows, yRows, xuRows)
	}
	if err != nil {
		sp.End()
		return nil, err
	}
	if diag != nil {
		if diag.hasInfo {
			sp.SetInt("iterations", int64(diag.info.Iterations))
			sp.SetBool("converged", diag.info.Converged)
			if diag.info.InitialLoss != 0 || diag.info.FinalLoss != 0 {
				sp.SetFloat("initial_loss", diag.info.InitialLoss)
				sp.SetFloat("final_loss", diag.info.FinalLoss)
			}
		}
		if diag.hasFit {
			sp.SetFloat("rmse_mac", diag.rmse[0])
			sp.SetFloat("rmse_acsd", diag.rmse[1])
			sp.SetFloat("r2_mac", diag.r2[0])
			sp.SetFloat("r2_acsd", diag.r2[1])
		}
	}
	for r, zone := range unlabeled {
		mac := preds.At(r, 0)
		acsd := preds.At(r, 1)
		if mac < 0 {
			mac = 0
		}
		if acsd < 0 {
			acsd = 0
		}
		res.MAC[zone] = mac
		res.ACSD[zone] = acsd
		res.Valid[zone] = true
	}
	res.Timing.Training = sp.End()

	if deg != nil {
		finishDegraded(string(modelUsed))
	}
	e.finishMeasures(res)
	return res, nil
}

// labelOutcome carries labeling's per-zone measures (nil where the zone
// had no reachable trips or was lost to pressure) plus the run's SPQ and
// pressure accounting.
type labelOutcome struct {
	measures  []*access.ZoneMeasure
	spqs      int64
	retries   int64
	abandoned int64
	// drained counts trips satisfied from the bank (no SPQ spent);
	// deposits buffers the cleanly-labeled zones' priced trips. The caller
	// flushes deposits to the bank only when the whole stage finished at
	// full fidelity — degraded or partial runs never deposit.
	drained  int64
	deposits []access.TripDeposit
	// failed counts zones given up after transient SPQ failures exhausted
	// their retries; truncated counts zones never priced because the
	// deadline budget ran out.
	failed    int
	truncated int
}

// newLabeler builds one labeler with the engine's retry policy and the
// labeling-stage deadline.
func (e *Engine) newLabeler(q Query, m *todam.Matrix, poiNodes []graph.NodeID, stopBy time.Time) *access.Labeler {
	return &access.Labeler{
		Router: e.router, Matrix: m, ZoneNode: e.City.ZoneNode,
		POINode: poiNodes, Cost: q.Cost, Params: q.CostParams,
		MaxAttempts: spqMaxAttempts, Deadline: stopBy, Bank: q.Bank,
	}
}

// labelZones prices the given zones, optionally in parallel. Output is
// deterministic regardless of worker count. Labeling dominates online
// query cost, so ctx and the stopBy truncation deadline are checked
// between zones: a cancelled query stops within one zone's worth of SPQs.
//
// Pressure is absorbed rather than escalated: a zone whose SPQs keep
// failing transiently after retries is skipped and counted in failed, and
// zones not priced before stopBy (or the ctx deadline) are counted in
// truncated with a nil error — the caller degrades the run instead of
// failing it. Only non-transient errors and plain cancellation propagate.
//
// The SPQ count is reported even on the error paths: the queries priced
// before a failure or cancellation were real router work, and callers feed
// the count into aq_engine_spqs_total either way.
func (e *Engine) labelZones(ctx context.Context, q Query, m *todam.Matrix, poiNodes []graph.NodeID, zones []int, stopBy time.Time) (labelOutcome, error) {
	if q.Workers <= 1 {
		return e.labelZonesSerial(ctx, q, m, poiNodes, zones, stopBy)
	}
	return e.labelZonesParallel(ctx, q, m, poiNodes, zones, stopBy, q.Workers)
}

func (e *Engine) labelZonesSerial(ctx context.Context, q Query, m *todam.Matrix, poiNodes []graph.NodeID, zones []int, stopBy time.Time) (labelOutcome, error) {
	labeler := e.newLabeler(q, m, poiNodes, stopBy)
	lo := labelOutcome{measures: make([]*access.ZoneMeasure, len(zones))}
	flush := func() {
		lo.spqs = labeler.SPQs
		lo.retries = labeler.Retries
		lo.abandoned = labeler.Abandoned
		lo.drained = labeler.Drained
		lo.deposits = labeler.PendingDeposits
	}
	for i, zone := range zones {
		if err := ctx.Err(); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				lo.truncated += len(zones) - i
				break
			}
			flush()
			return lo, err
		}
		if !stopBy.IsZero() && time.Now().After(stopBy) {
			lo.truncated += len(zones) - i
			break
		}
		zm, ok, err := labeler.LabelZone(zone)
		switch {
		case err == nil:
			if ok {
				measure := zm
				lo.measures[i] = &measure
			}
		case errors.Is(err, context.DeadlineExceeded):
			// The labeler's own deadline fired mid-zone: this zone and the
			// rest are lost to truncation.
			lo.truncated += len(zones) - i
			flush()
			return lo, nil
		case fault.IsTransient(err):
			lo.failed++
		default:
			flush()
			return lo, err
		}
	}
	flush()
	return lo, nil
}

func (e *Engine) labelZonesParallel(ctx context.Context, q Query, m *todam.Matrix, poiNodes []graph.NodeID, zones []int, stopBy time.Time, workers int) (labelOutcome, error) {
	lo := labelOutcome{measures: make([]*access.ZoneMeasure, len(zones))}
	jobs := make(chan int)
	errs := make(chan error, workers)
	var failed, truncated atomic.Int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			labeler := e.newLabeler(q, m, poiNodes, stopBy)
			// Fold this worker's counters in even when it exits on an error,
			// so the error paths below still see the accumulated counts
			// after wg.Wait.
			defer func() {
				mu.Lock()
				lo.spqs += labeler.SPQs
				lo.retries += labeler.Retries
				lo.abandoned += labeler.Abandoned
				lo.drained += labeler.Drained
				lo.deposits = append(lo.deposits, labeler.PendingDeposits...)
				mu.Unlock()
			}()
			for i := range jobs {
				zm, ok, err := labeler.LabelZone(zones[i])
				switch {
				case err == nil:
					if ok {
						measure := zm
						lo.measures[i] = &measure
					}
				case errors.Is(err, context.DeadlineExceeded):
					truncated.Add(1)
				case fault.IsTransient(err):
					failed.Add(1)
				default:
					errs <- err
					return
				}
			}
		}()
	}
	// finish folds the atomics once the workers have drained; valid only
	// after wg.Wait.
	finish := func(err error) (labelOutcome, error) {
		lo.failed = int(failed.Load())
		lo.truncated += int(truncated.Load())
		return lo, err
	}
	for i := range zones {
		if !stopBy.IsZero() && time.Now().After(stopBy) {
			lo.truncated += len(zones) - i
			break
		}
		select {
		case err := <-errs:
			close(jobs)
			wg.Wait()
			return finish(err)
		case <-ctx.Done():
			close(jobs)
			wg.Wait()
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				lo.truncated += len(zones) - i
				return finish(nil)
			}
			return finish(ctx.Err())
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return finish(err)
	default:
	}
	return finish(nil)
}

// trainDiag carries the training-stage diagnostics a trace's "training"
// span surfaces: the model's own convergence report and the in-sample
// (labeled-zone) fit quality in original target units.
type trainDiag struct {
	info    ml.TrainInfo
	hasInfo bool
	// rmse and r2 are per-target-column (MAC, ACSD) in-sample metrics.
	rmse   [2]float64
	r2     [2]float64
	hasFit bool
}

// trainPredict standardizes, fits the selected model, and returns
// de-standardized predictions for the unlabeled zones plus training
// diagnostics (never nil on success).
func (e *Engine) trainPredict(q Query, labeled, unlabeled []int, xRows, yRows, xuRows [][]float64) (*mat.Dense, *trainDiag, error) {
	x, err := mat.FromRows(xRows)
	if err != nil {
		return nil, nil, err
	}
	y, err := mat.FromRows(yRows)
	if err != nil {
		return nil, nil, err
	}
	xu, err := mat.FromRows(xuRows)
	if err != nil {
		return nil, nil, err
	}
	if xu.Rows() == 0 {
		return mat.New(0, y.Cols()), &trainDiag{}, nil
	}
	// Standardize features with statistics over L ∪ U: features exist for
	// every zone, and using only the labeled subset can leave a column
	// degenerate there (zero variance) while it varies wildly across the
	// unlabeled zones, exploding predictions.
	stacked, err := mat.FromRows(append(append([][]float64{}, xRows...), xuRows...))
	if err != nil {
		return nil, nil, err
	}
	fm, fs := mat.ColumnStats(stacked)
	xs, err := mat.Standardize(x, fm, fs)
	if err != nil {
		return nil, nil, err
	}
	xus, err := mat.Standardize(xu, fm, fs)
	if err != nil {
		return nil, nil, err
	}
	tm, ts := mat.ColumnStats(y)
	ys, err := mat.Standardize(y, tm, ts)
	if err != nil {
		return nil, nil, err
	}
	model, err := e.newModel(q, labeled, unlabeled)
	if err != nil {
		return nil, nil, err
	}
	if err := model.Fit(xs, ys, xus); err != nil {
		return nil, nil, fmt.Errorf("core: fitting %s: %w", q.Model, err)
	}
	preds, err := model.Predict(xus)
	if err != nil {
		return nil, nil, fmt.Errorf("core: predicting with %s: %w", q.Model, err)
	}
	// De-standardize targets.
	out := mat.New(preds.Rows(), preds.Cols())
	for i := 0; i < preds.Rows(); i++ {
		for j := 0; j < preds.Cols(); j++ {
			out.Set(i, j, preds.At(i, j)*ts[j]+tm[j])
		}
	}
	diag := &trainDiag{}
	if d, ok := model.(ml.Diagnoser); ok {
		diag.info = d.TrainInfo()
		diag.hasInfo = true
	}
	diag.inSample(model, xs, y, tm, ts)
	return out, diag, nil
}

// inSample fills the diagnostic's RMSE/R² by predicting the labeled rows
// and comparing, in original units, against the true targets. The GNN is
// transductive — Predict only accepts the unlabeled rows — so its cached
// labeled-node predictions are used instead. Diagnostics are best-effort:
// a model that cannot re-predict its training rows simply leaves hasFit
// false rather than failing the query.
func (d *trainDiag) inSample(model ml.Model, xs, y *mat.Dense, tm, ts []float64) {
	var preds *mat.Dense
	var err error
	if g, ok := model.(*ml.GNN); ok {
		preds, err = g.LabeledPredictions()
	} else {
		preds, err = model.Predict(xs)
	}
	if err != nil || preds == nil || preds.Rows() != y.Rows() || preds.Cols() != y.Cols() || y.Cols() > len(d.rmse) {
		return
	}
	n := float64(y.Rows())
	for j := 0; j < y.Cols(); j++ {
		var mean float64
		for i := 0; i < y.Rows(); i++ {
			mean += y.At(i, j)
		}
		mean /= n
		var ssRes, ssTot float64
		for i := 0; i < y.Rows(); i++ {
			p := preds.At(i, j)*ts[j] + tm[j]
			r := y.At(i, j) - p
			ssRes += r * r
			t := y.At(i, j) - mean
			ssTot += t * t
		}
		d.rmse[j] = math.Sqrt(ssRes / n)
		if ssTot > 0 {
			d.r2[j] = 1 - ssRes/ssTot
		}
	}
	d.hasFit = true
}

func (e *Engine) newModel(q Query, labeled, unlabeled []int) (ml.Model, error) {
	switch q.Model {
	case ModelOLS:
		return ml.NewOLS(), nil
	case ModelMLP:
		return ml.NewMLP(q.Seed), nil
	case ModelMT:
		return ml.NewMeanTeacher(q.Seed), nil
	case ModelCOREG:
		return ml.NewCOREG(q.Seed), nil
	case ModelKRR:
		return ml.NewKRR(), nil
	case ModelLapRLS:
		return ml.NewLapRLS(), nil
	case ModelGNN:
		adj, err := e.adjacency()
		if err != nil {
			return nil, err
		}
		g := ml.NewGNN(q.Seed)
		g.SetGraph(adj, labeled, unlabeled)
		return g, nil
	default:
		return nil, fmt.Errorf("core: unknown model %q", q.Model)
	}
}

// adjacency lazily builds the Gaussian-thresholded zone adjacency the GNN
// uses.
func (e *Engine) adjacency() (*ml.SparseAdj, error) {
	e.adjMu.Lock()
	defer e.adjMu.Unlock()
	if e.adjCache != nil {
		return e.adjCache, nil
	}
	adj, err := ml.NewGaussianAdjacency(e.zonePts, 1200, 0.05)
	if err != nil {
		return nil, err
	}
	e.adjCache = adj
	return adj, nil
}

// finishMeasures computes classes and fairness over valid zones.
func (e *Engine) finishMeasures(res *Result) {
	var mac, acsd []float64
	var idx []int
	for i, ok := range res.Valid {
		if ok {
			mac = append(mac, res.MAC[i])
			acsd = append(acsd, res.ACSD[i])
			idx = append(idx, i)
		}
	}
	res.Classes = make([]access.Class, len(res.MAC))
	classes, err := access.Classify(mac, acsd)
	if err == nil {
		for k, i := range idx {
			res.Classes[i] = classes[k]
		}
	}
	res.Fairness = access.JainIndex(mac)
}

// GroundTruth labels every zone — the naive full-TODAM approach — and is
// both the Table II baseline and the evaluation reference for Figs. 3-4.
func (e *Engine) GroundTruth(q Query) (*Result, error) {
	return e.GroundTruthContext(context.Background(), q)
}

// GroundTruthContext is GroundTruth with cooperative cancellation: the
// labeling loop — a full-TODAM baseline prices every zone, so it dominates
// by far — aborts between zones when ctx is cancelled, so a timed-out or
// abandoned baseline run stops burning CPU instead of finishing anyway.
func (e *Engine) GroundTruthContext(ctx context.Context, q Query) (*Result, error) {
	q = q.withDefaults()
	if len(q.POIs) == 0 {
		return nil, fmt.Errorf("core: query has no POIs")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nz := len(e.zonePts)
	res := &Result{
		MAC:     make([]float64, nz),
		ACSD:    make([]float64, nz),
		Valid:   make([]bool, nz),
		Labeled: make([]bool, nz),
	}
	t0 := time.Now()
	m, poiNodes, _, err := e.buildMatrix(q)
	if err != nil {
		return nil, err
	}
	res.Matrix = m
	res.Timing.Matrix = time.Since(t0)
	t0 = time.Now()
	all := make([]int, nz)
	for i := range all {
		all[i] = i
	}
	lo, err := e.labelZones(ctx, q, m, poiNodes, all, time.Time{})
	if err == nil && lo.truncated > 0 {
		// With no stopBy, truncation can only mean the ctx deadline fired.
		// A partial ground truth would silently bias evaluations, so the
		// baseline keeps its all-or-nothing contract and errors instead.
		err = ctx.Err()
	}
	if err != nil {
		mSPQs.Add(lo.spqs)
		return nil, err
	}
	var walkShareSum float64
	var okCount int
	for zone, zm := range lo.measures {
		if zm == nil {
			continue
		}
		res.MAC[zone] = zm.MAC
		res.ACSD[zone] = zm.ACSD
		res.Valid[zone] = true
		res.Labeled[zone] = true
		walkShareSum += zm.WalkOnlyShare
		okCount++
	}
	res.Timing.Labeling = time.Since(t0)
	res.Timing.SPQs = lo.spqs
	res.Timing.SPQRetries = lo.retries
	res.Timing.SPQAbandoned = lo.abandoned
	if okCount > 0 {
		res.WalkOnlyShare = walkShareSum / float64(okCount)
	}
	e.finishMeasures(res)
	return res, nil
}

// FeatureCosts measures feature-generation time at the two aggregation
// granularities the paper weighs (Section IV-C): origin-level (one
// α-weighted vector per zone, the production path) versus OD-level (one
// vector per pair with positive attractiveness). It returns both durations
// and the OD row count.
func (e *Engine) FeatureCosts(q Query) (originLevel, odLevel time.Duration, odRows int, err error) {
	q = q.withDefaults()
	if len(q.POIs) == 0 {
		return 0, 0, 0, fmt.Errorf("core: query has no POIs")
	}
	m, _, poiZones, err := e.buildMatrix(q)
	if err != nil {
		return 0, 0, 0, err
	}
	t0 := time.Now()
	for zone := 0; zone < len(e.zonePts); zone++ {
		if _, err := e.extractor.OriginVector(zone, m.Row(zone), q.POIs, poiZones); err != nil {
			return 0, 0, 0, err
		}
	}
	originLevel = time.Since(t0)
	t0 = time.Now()
	for zone := 0; zone < len(e.zonePts); zone++ {
		for _, pt := range m.Row(zone) {
			if _, err := e.extractor.PairVector(zone, q.POIs[pt.POI], poiZones[pt.POI]); err != nil {
				return 0, 0, 0, err
			}
			odRows++
		}
	}
	odLevel = time.Since(t0)
	return originLevel, odLevel, odRows, nil
}

// buildMatrix constructs the gravity TODAM for a query plus the POI weld
// and zone association arrays.
func (e *Engine) buildMatrix(q Query) (*todam.Matrix, []graph.NodeID, []int, error) {
	spec := todam.Spec{
		ZonePts:        e.zonePts,
		POIPts:         q.POIs,
		Interval:       e.Interval,
		SamplesPerHour: q.SamplesPerHour,
		Attractiveness: q.Attractiveness,
		POIWeights:     q.POIWeights,
		ZoneWeights:    e.City.ZoneWeights,
		Seed:           q.Seed,
	}
	m, err := todam.Build(spec)
	if err != nil {
		return nil, nil, nil, err
	}
	// Weld POIs to road nodes and associate them with zones, using the
	// KD-trees hoisted into NewEngine: the per-query cost here is now
	// O(POIs · log n) lookups instead of an O(road nodes) tree build.
	nodes := make([]graph.NodeID, len(q.POIs))
	zones := make([]int, len(q.POIs))
	for j, p := range q.POIs {
		if nb, ok := e.roadTree.Nearest(p); ok {
			nodes[j] = graph.NodeID(nb.Item.ID)
		} else {
			nodes[j] = graph.InvalidNode
		}
		if nb, ok := e.zoneTree.Nearest(p); ok {
			zones[j] = nb.Item.ID
		}
	}
	return m, nodes, zones, nil
}

// Isochrones exposes the per-zone walking isochrones (for inspection and
// diagnostics).
func (e *Engine) Isochrones() *isochrone.Set { return e.isos }
