package core

import "strings"

// DegradationRung identifies one rung of the engine's deadline-pressure
// degradation ladder, ordered by severity. Under deadline or fault
// pressure the engine climbs the ladder instead of failing: first it
// shrinks the effective labeling budget (truncating or losing labeled
// zones), then it swaps the configured model for OLS, and finally it
// returns a partial, labeled-only result.
type DegradationRung string

// The ladder, least to most severe.
const (
	// RungBudget: the effective labeling budget fell below the requested β —
	// labeling was truncated at the deadline or zones were abandoned after
	// exhausting transient-failure retries.
	RungBudget DegradationRung = "budget"
	// RungModelFallback: the configured model was replaced by OLS, either
	// because too little of the deadline remained for an iterative fit or
	// because the configured model failed.
	RungModelFallback DegradationRung = "model_fallback"
	// RungPartial: the run could not reach training; the result carries only
	// the zones labeled before the deadline, with every other zone invalid.
	RungPartial DegradationRung = "partial"
)

// rungOrder ranks rungs by severity for monotonicity checks.
var rungOrder = map[DegradationRung]int{RungBudget: 1, RungModelFallback: 2, RungPartial: 3}

// Severity returns the rung's rank (higher is worse), 0 for unknown.
func (r DegradationRung) Severity() int { return rungOrder[r] }

// DegradedReport describes how a run degraded instead of failing. A nil
// report on a Result means full fidelity. Fields are JSON-tagged because
// the serving layer embeds the report verbatim in query responses.
type DegradedReport struct {
	// Rungs lists the ladder rungs that fired, in severity order.
	Rungs []DegradationRung `json:"rungs"`
	// Reasons gives one human-readable sentence per fired rung.
	Reasons []string `json:"reasons"`
	// BudgetRequested and BudgetEffective compare the requested labeling
	// budget β against the labeled share actually achieved.
	BudgetRequested float64 `json:"budget_requested"`
	BudgetEffective float64 `json:"budget_effective"`
	// ModelRequested and ModelUsed differ when the model-fallback rung
	// fired.
	ModelRequested string `json:"model_requested,omitempty"`
	ModelUsed      string `json:"model_used,omitempty"`
	// ZonesFailed counts labeled-set zones abandoned after transient SPQ
	// failures; ZonesTruncated counts those never attempted because the
	// deadline budget ran out.
	ZonesFailed    int `json:"zones_failed,omitempty"`
	ZonesTruncated int `json:"zones_truncated,omitempty"`
	// SPQRetries and SPQAbandoned account for every injected or organic
	// transient SPQ failure: each one was either retried or abandoned.
	SPQRetries   int64 `json:"spq_retries,omitempty"`
	SPQAbandoned int64 `json:"spq_abandoned,omitempty"`
}

// fire records a rung with its reason, keeping Rungs sorted by severity
// and free of duplicates.
func (d *DegradedReport) fire(r DegradationRung, reason string) {
	for i, have := range d.Rungs {
		if have == r {
			d.Reasons[i] = reason
			return
		}
	}
	at := len(d.Rungs)
	for i, have := range d.Rungs {
		if r.Severity() < have.Severity() {
			at = i
			break
		}
	}
	d.Rungs = append(d.Rungs, "")
	copy(d.Rungs[at+1:], d.Rungs[at:])
	d.Rungs[at] = r
	d.Reasons = append(d.Reasons, "")
	copy(d.Reasons[at+1:], d.Reasons[at:])
	d.Reasons[at] = reason
}

// Has reports whether the rung fired.
func (d *DegradedReport) Has(r DegradationRung) bool {
	if d == nil {
		return false
	}
	for _, have := range d.Rungs {
		if have == r {
			return true
		}
	}
	return false
}

// Severity returns the worst fired rung's rank; 0 for a nil or empty
// report. Chaos tests assert this is monotone in the injected fault rate.
func (d *DegradedReport) Severity() int {
	if d == nil {
		return 0
	}
	worst := 0
	for _, r := range d.Rungs {
		if s := r.Severity(); s > worst {
			worst = s
		}
	}
	return worst
}

// String renders the fired rungs for spans and logs, e.g.
// "budget,model_fallback".
func (d *DegradedReport) String() string {
	if d == nil || len(d.Rungs) == 0 {
		return ""
	}
	parts := make([]string, len(d.Rungs))
	for i, r := range d.Rungs {
		parts[i] = string(r)
	}
	return strings.Join(parts, ",")
}
