package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"accessquery/internal/access"
)

// WriteCSV exports the per-zone measures as CSV with columns
// zone, lat, lon, mac, acsd, class, labeled — the format GIS tools and
// notebooks ingest to draw Fig. 5-style maps. Invalid zones are skipped.
func (r *Result) WriteCSV(w io.Writer, e *Engine) error {
	if e == nil {
		return fmt.Errorf("core: nil engine")
	}
	if len(r.MAC) != len(e.zonePts) {
		return fmt.Errorf("core: result covers %d zones, engine has %d", len(r.MAC), len(e.zonePts))
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"zone", "lat", "lon", "mac_seconds", "acsd_seconds", "class", "labeled"}); err != nil {
		return err
	}
	for i := range r.MAC {
		if !r.Valid[i] {
			continue
		}
		rec := []string{
			strconv.Itoa(i),
			strconv.FormatFloat(e.zonePts[i].Lat, 'f', 6, 64),
			strconv.FormatFloat(e.zonePts[i].Lon, 'f', 6, 64),
			strconv.FormatFloat(r.MAC[i], 'f', 2, 64),
			strconv.FormatFloat(r.ACSD[i], 'f', 2, 64),
			r.Classes[i].String(),
			strconv.FormatBool(r.Labeled[i]),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Summary condenses a result into the headline numbers a policy dashboard
// shows.
type Summary struct {
	Zones        int
	ValidZones   int
	LabeledZones int
	// MeanMAC and MeanACSD are over valid zones, in the query's cost unit
	// (seconds).
	MeanMAC  float64
	MeanACSD float64
	// Fairness is Jain's index, Gini the Gini coefficient of MAC.
	Fairness float64
	Gini     float64
	// ClassCounts indexes counts by accessibility class.
	ClassCounts [4]int
	SPQs        int64
}

// Summarize computes the Summary of a result.
func (r *Result) Summarize() Summary {
	s := Summary{Zones: len(r.MAC), Fairness: r.Fairness, SPQs: r.Timing.SPQs}
	var macs []float64
	for i := range r.MAC {
		if !r.Valid[i] {
			continue
		}
		s.ValidZones++
		if r.Labeled[i] {
			s.LabeledZones++
		}
		s.MeanMAC += r.MAC[i]
		s.MeanACSD += r.ACSD[i]
		s.ClassCounts[r.Classes[i]]++
		macs = append(macs, r.MAC[i])
	}
	if s.ValidZones > 0 {
		s.MeanMAC /= float64(s.ValidZones)
		s.MeanACSD /= float64(s.ValidZones)
	}
	if g, err := giniOf(macs); err == nil {
		s.Gini = g
	}
	return s
}

// giniOf delegates to the access package's Gini coefficient.
func giniOf(values []float64) (float64, error) { return access.Gini(values) }
