package core

import (
	"fmt"
	"io"
	"sort"

	"accessquery/internal/obs"
)

// ExplainStage is one pipeline stage in an execution report: its wall-clock
// cost and the attributes its span recorded.
type ExplainStage struct {
	Name    string         `json:"name"`
	Seconds float64        `json:"seconds"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// ExplainReport is the per-query execution report assembled from a run's
// trace: the headline cost-model quantities the paper's Table II
// decomposes (TODAM reduction, SPQ count, per-stage time) plus model
// convergence and in-sample fit, with the full span tree attached.
type ExplainReport struct {
	TraceID string  `json:"trace_id"`
	Seconds float64 `json:"seconds"`

	Model        string `json:"model,omitempty"`
	Zones        int64  `json:"zones,omitempty"`
	LabeledZones int64  `json:"labeled_zones,omitempty"`
	SPQs         int64  `json:"spqs,omitempty"`

	// Degradation-ladder visibility: which rungs fired (empty when the run
	// answered at full fidelity) and the transient-SPQ accounting.
	Degraded       bool   `json:"degraded"`
	DegradedRungs  string `json:"degraded_rungs,omitempty"`
	SPQRetries     int64  `json:"spq_retries,omitempty"`
	SPQAbandoned   int64  `json:"spq_abandoned,omitempty"`
	FailedZones    int64  `json:"failed_zones,omitempty"`
	TruncatedZones int64  `json:"truncated_zones,omitempty"`

	// TODAM size: trips priced against the O(|Z||P||R|) full matrix.
	MatrixTrips        int64   `json:"matrix_trips,omitempty"`
	MatrixFullTrips    int64   `json:"matrix_full_trips,omitempty"`
	MatrixReductionPct float64 `json:"matrix_reduction_pct,omitempty"`

	// Label-bank accounting: trips drained from the cross-query bank
	// versus priced by SPQ (== SPQs), and how many priced trips the run
	// deposited back. BankEnabled distinguishes "no bank attached" from a
	// bank that happened to see zero traffic.
	BankEnabled   bool  `json:"bank_enabled,omitempty"`
	BankDrained   int64 `json:"bank_drained,omitempty"`
	BankDeposited int64 `json:"bank_deposited,omitempty"`

	FeatureCacheHits   int64 `json:"feature_cache_hits"`
	FeatureCacheMisses int64 `json:"feature_cache_misses"`

	TrainingIterations int64   `json:"training_iterations,omitempty"`
	TrainingConverged  bool    `json:"training_converged"`
	RMSEMAC            float64 `json:"rmse_mac,omitempty"`
	RMSEACSD           float64 `json:"rmse_acsd,omitempty"`
	R2MAC              float64 `json:"r2_mac,omitempty"`
	R2ACSD             float64 `json:"r2_acsd,omitempty"`

	// Scenario carries the delta provenance of a scenario-derived engine
	// (nil when the run executed on a baseline engine).
	Scenario *ScenarioExplain `json:"scenario,omitempty"`

	Stages []ExplainStage    `json:"stages"`
	Trace  *obs.TraceSummary `json:"trace,omitempty"`
}

// ScenarioExplain reports the blast radius the serving engine was
// incrementally rebuilt under, read from the tenant span's attributes.
type ScenarioExplain struct {
	Deltas       int64 `json:"deltas"`
	Mutations    int64 `json:"mutations"`
	ZonesTouched int64 `json:"zones_touched"`
	TreesRebuilt int64 `json:"hop_trees_rebuilt"`
	RebuildMS    int64 `json:"rebuild_ms"`
	FullPrepMS   int64 `json:"est_full_rebuild_ms"`
}

// attrInt reads an integer attribute from a span node's attribute map.
func attrInt(n *obs.SpanNode, key string) int64 {
	if n == nil {
		return 0
	}
	v, _ := n.Attrs[key].(int64)
	return v
}

func attrFloat(n *obs.SpanNode, key string) float64 {
	if n == nil {
		return 0
	}
	switch v := n.Attrs[key].(type) {
	case float64:
		return v
	case int64:
		return float64(v)
	}
	return 0
}

func attrString(n *obs.SpanNode, key string) string {
	if n == nil {
		return ""
	}
	v, _ := n.Attrs[key].(string)
	return v
}

func attrBool(n *obs.SpanNode, key string) bool {
	if n == nil {
		return false
	}
	v, _ := n.Attrs[key].(bool)
	return v
}

// Explain assembles an execution report from a completed run's trace
// summary. It tolerates partial trees (errored runs, dropped spans):
// missing stages simply leave their fields zero. Returns nil for a nil
// summary.
func Explain(sum *obs.TraceSummary) *ExplainReport {
	if sum == nil {
		return nil
	}
	r := &ExplainReport{
		TraceID: sum.TraceID,
		Seconds: sum.Seconds,
		Trace:   sum,
	}
	query := sum.Find("query")
	r.Model = attrString(query, "model")
	r.Zones = attrInt(query, "zones")

	matrix := sum.Find("matrix")
	r.MatrixTrips = attrInt(matrix, "trips")
	r.MatrixFullTrips = attrInt(matrix, "full_trips")
	r.MatrixReductionPct = attrFloat(matrix, "reduction_pct")

	r.Degraded = attrBool(query, "degraded")
	r.DegradedRungs = attrString(query, "degraded_rungs")

	labeling := sum.Find("labeling")
	r.SPQs = attrInt(labeling, "spqs")
	r.LabeledZones = attrInt(labeling, "labeled_zones")
	r.SPQRetries = attrInt(labeling, "spq_retries")
	r.SPQAbandoned = attrInt(labeling, "spq_abandoned")
	r.FailedZones = attrInt(labeling, "failed_zones")
	r.TruncatedZones = attrInt(labeling, "truncated_zones")
	r.BankEnabled = attrBool(labeling, "bank")
	r.BankDrained = attrInt(labeling, "bank_drained")
	r.BankDeposited = attrInt(labeling, "bank_deposited")

	feat := sum.Find("features")
	r.FeatureCacheHits = attrInt(feat, "cache_hits")
	r.FeatureCacheMisses = attrInt(feat, "cache_misses")

	training := sum.Find("training")
	r.TrainingIterations = attrInt(training, "iterations")
	r.TrainingConverged = attrBool(training, "converged")
	r.RMSEMAC = attrFloat(training, "rmse_mac")
	r.RMSEACSD = attrFloat(training, "rmse_acsd")
	r.R2MAC = attrFloat(training, "r2_mac")
	r.R2ACSD = attrFloat(training, "r2_acsd")
	if r.Model == "" {
		r.Model = attrString(training, "model")
	}

	tenant := sum.Find("tenant")
	if deltas := attrInt(tenant, "scenario_deltas"); deltas > 0 {
		r.Scenario = &ScenarioExplain{
			Deltas:       deltas,
			Mutations:    attrInt(tenant, "scenario_mutations"),
			ZonesTouched: attrInt(tenant, "scenario_zones_touched"),
			TreesRebuilt: attrInt(tenant, "scenario_trees_rebuilt"),
			RebuildMS:    attrInt(tenant, "scenario_rebuild_ms"),
			FullPrepMS:   attrInt(tenant, "scenario_full_prep_ms"),
		}
	}

	// Flatten the query's direct pipeline stages (plus any serving-layer
	// spans above it, e.g. queue_wait) into report rows, in start order.
	for _, root := range sum.Spans {
		root.Walk(func(n *obs.SpanNode) {
			switch n.Name {
			case "queue_wait", "matrix", "sampling", "labeling", "features", "training":
				r.Stages = append(r.Stages, ExplainStage{Name: n.Name, Seconds: n.Seconds, Attrs: n.Attrs})
			}
		})
	}
	sortStagesByStart(r.Stages, sum)
	return r
}

// sortStagesByStart keeps report rows in execution order even when spans
// from different subtrees interleave.
func sortStagesByStart(stages []ExplainStage, sum *obs.TraceSummary) {
	startOf := make(map[string]float64, len(stages))
	for _, st := range stages {
		if n := sum.Find(st.Name); n != nil {
			startOf[st.Name] = n.StartMS
		}
	}
	sort.SliceStable(stages, func(i, j int) bool {
		return startOf[stages[i].Name] < startOf[stages[j].Name]
	})
}

// WriteText renders the report for terminals (the aqquery -explain output).
func (r *ExplainReport) WriteText(w io.Writer) {
	if r == nil {
		return
	}
	fmt.Fprintf(w, "query %s: %.3fs", r.TraceID, r.Seconds)
	if r.Model != "" {
		fmt.Fprintf(w, "  model=%s", r.Model)
	}
	fmt.Fprintln(w)
	if r.MatrixFullTrips > 0 {
		fmt.Fprintf(w, "  todam: %d trips (full %d, %.1f%% reduction)\n",
			r.MatrixTrips, r.MatrixFullTrips, r.MatrixReductionPct)
	}
	if r.Zones > 0 {
		fmt.Fprintf(w, "  labeling: %d/%d zones labeled, %d SPQs\n", r.LabeledZones, r.Zones, r.SPQs)
	}
	if r.BankEnabled {
		fmt.Fprintf(w, "  bank: %d drained, %d priced, %d deposited\n",
			r.BankDrained, r.SPQs, r.BankDeposited)
	}
	if r.SPQRetries > 0 || r.SPQAbandoned > 0 {
		fmt.Fprintf(w, "  spq faults: %d retried, %d abandoned (%d zones failed, %d truncated)\n",
			r.SPQRetries, r.SPQAbandoned, r.FailedZones, r.TruncatedZones)
	}
	if r.Degraded {
		fmt.Fprintf(w, "  degraded: %s\n", r.DegradedRungs)
	}
	fmt.Fprintf(w, "  feature cache: %d hits, %d misses\n", r.FeatureCacheHits, r.FeatureCacheMisses)
	if r.TrainingIterations > 0 {
		fmt.Fprintf(w, "  training: %d iterations, converged=%v, in-sample RMSE mac=%.3f acsd=%.3f, R² mac=%.3f acsd=%.3f\n",
			r.TrainingIterations, r.TrainingConverged, r.RMSEMAC, r.RMSEACSD, r.R2MAC, r.R2ACSD)
	}
	if sc := r.Scenario; sc != nil {
		fmt.Fprintf(w, "  scenario: %d deltas (%d mutations), %d zones touched, %d hop trees rebuilt, rebuild %dms vs full %dms\n",
			sc.Deltas, sc.Mutations, sc.ZonesTouched, sc.TreesRebuilt, sc.RebuildMS, sc.FullPrepMS)
	}
	for _, st := range r.Stages {
		fmt.Fprintf(w, "  %-10s %9.3fms\n", st.Name, st.Seconds*1e3)
	}
}
