package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRunContextPreCancelled(t *testing.T) {
	e := engine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.RunContext(ctx, vaxQuery(e, ModelOLS, 0.3))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextDeadline(t *testing.T) {
	e := engine(t)
	// A deadline far shorter than any real query: the run must abort
	// between zone batches and report the deadline, not a partial result.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.RunContext(ctx, vaxQuery(e, ModelOLS, 0.5))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// Generous bound: cancellation must not wait for the full SPQ loop.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancelled run still took %v", elapsed)
	}
}

func TestRunContextDeadlineParallelLabeling(t *testing.T) {
	e := engine(t)
	q := vaxQuery(e, ModelOLS, 0.5)
	q.Workers = 4
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := e.RunContext(ctx, q); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	e := engine(t)
	q := vaxQuery(e, ModelOLS, 0.3)
	want, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.RunContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if want.Fairness != got.Fairness || want.Timing.SPQs != got.Timing.SPQs {
		t.Errorf("RunContext diverges from Run: fairness %v vs %v, spqs %d vs %d",
			got.Fairness, want.Fairness, got.Timing.SPQs, want.Timing.SPQs)
	}
}
