package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"accessquery/internal/fault"
)

func TestRunContextPreCancelled(t *testing.T) {
	e := engine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.RunContext(ctx, vaxQuery(e, ModelOLS, 0.3))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// slowSPQs installs a fault injector that stalls every profile search,
// guaranteeing deadline pressure regardless of machine speed.
func slowSPQs(t *testing.T, delay time.Duration) {
	spec, err := fault.ParseSpec("spq:delay=" + delay.String())
	if err != nil {
		t.Fatal(err)
	}
	prev := fault.Enable(fault.New(spec))
	t.Cleanup(func() { fault.Enable(prev) })
}

func TestRunContextDeadline(t *testing.T) {
	e := engine(t)
	slowSPQs(t, 5*time.Millisecond)
	// A deadline labeling cannot possibly meet: the run must degrade —
	// truncating labeling and, if fewer than two zones were priced, answer
	// partially — rather than fail or run to completion.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := e.RunContext(ctx, vaxQuery(e, ModelOLS, 0.5))
	if err != nil {
		t.Fatalf("deadline-pressured run failed instead of degrading: %v", err)
	}
	if res.Degraded == nil {
		t.Fatal("deadline-pressured run reported full fidelity")
	}
	if !res.Degraded.Has(RungBudget) && !res.Degraded.Has(RungPartial) {
		t.Errorf("rungs = %s, want budget and/or partial", res.Degraded)
	}
	// Generous bound: degradation must not wait for the full SPQ loop.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("deadline-pressured run still took %v", elapsed)
	}
}

func TestRunContextDeadlineParallelLabeling(t *testing.T) {
	e := engine(t)
	slowSPQs(t, 5*time.Millisecond)
	q := vaxQuery(e, ModelOLS, 0.5)
	q.Workers = 4
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res, err := e.RunContext(ctx, q)
	if err != nil {
		t.Fatalf("deadline-pressured run failed instead of degrading: %v", err)
	}
	if res.Degraded == nil {
		t.Fatal("deadline-pressured run reported full fidelity")
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	e := engine(t)
	q := vaxQuery(e, ModelOLS, 0.3)
	want, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.RunContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if want.Fairness != got.Fairness || want.Timing.SPQs != got.Timing.SPQs {
		t.Errorf("RunContext diverges from Run: fairness %v vs %v, spqs %d vs %d",
			got.Fairness, want.Fairness, got.Timing.SPQs, want.Timing.SPQs)
	}
}
