package core

import (
	"fmt"
	"testing"
	"time"

	"accessquery/internal/bank"
	"accessquery/internal/gtfs"
	"accessquery/internal/synth"
)

// benchCity is larger than the equality-test city so the per-zone Dijkstra
// and tree builds dominate over pool bookkeeping and the speedup at 4
// workers is visible.
func benchCity(b *testing.B) *synth.City {
	b.Helper()
	c, err := synth.Generate(synth.Scaled(synth.Coventry(), 0.2))
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func benchInterval() gtfs.Interval {
	return gtfs.Interval{Start: 7 * 3600, End: 9 * 3600, Day: time.Tuesday, Label: "AM peak"}
}

// BenchmarkNewEngine measures the offline prep phase (zone isochrones,
// hop-tree forest, spatial indexes) at different pool sizes. The acceptance
// target for this PR is >=2x at workers=4 vs workers=1.
func BenchmarkNewEngine(b *testing.B) {
	city := benchCity(b)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewEngine(city, EngineOptions{Interval: benchInterval(), Parallelism: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineRun measures the online query path. Allocations per op are
// part of the acceptance criteria: hoisting the road/zone KD-trees out of
// buildMatrix must show up as a drop versus rebuilding them per query.
func BenchmarkEngineRun(b *testing.B) {
	city := benchCity(b)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e, err := NewEngine(city, EngineOptions{Interval: benchInterval(), Parallelism: workers})
			if err != nil {
				b.Fatal(err)
			}
			q := Query{
				POIs:           POIsOf(city, synth.POISchool),
				Budget:         0.1,
				Model:          ModelOLS,
				SamplesPerHour: 6,
				Workers:        workers,
				Parallelism:    workers,
				Seed:           1,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineRunWarmBank measures the repeat-query path the label bank
// targets: the same query against a segment warmed by one prior run, so
// every trip drains instead of pricing. bank=false re-runs the identical
// shape without a bank as the in-benchmark baseline; the delta is the SPQ
// savings as wall-clock.
func BenchmarkEngineRunWarmBank(b *testing.B) {
	city := benchCity(b)
	e, err := NewEngine(city, EngineOptions{Interval: benchInterval(), Parallelism: 4})
	if err != nil {
		b.Fatal(err)
	}
	q := Query{
		POIs:           POIsOf(city, synth.POISchool),
		Budget:         0.1,
		Model:          ModelOLS,
		SamplesPerHour: 6,
		Workers:        4,
		Parallelism:    4,
		Seed:           1,
	}
	for _, banked := range []bool{false, true} {
		b.Run(fmt.Sprintf("bank=%v", banked), func(b *testing.B) {
			qq := q
			if banked {
				qq.Bank = bank.New(bank.Config{}).Segment(city.Name, 1)
				if _, err := e.Run(qq); err != nil { // warm the segment
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(qq); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
