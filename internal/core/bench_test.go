package core

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"accessquery/internal/bank"
	"accessquery/internal/gtfs"
	"accessquery/internal/synth"
)

// benchCity is larger than the equality-test city so the per-zone Dijkstra
// and tree builds dominate over pool bookkeeping and the speedup at 4
// workers is visible.
func benchCity(b *testing.B) *synth.City {
	b.Helper()
	c, err := synth.Generate(synth.Scaled(synth.Coventry(), 0.2))
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func benchInterval() gtfs.Interval {
	return gtfs.Interval{Start: 7 * 3600, End: 9 * 3600, Day: time.Tuesday, Label: "AM peak"}
}

// BenchmarkNewEngine measures the offline prep phase (zone isochrones,
// hop-tree forest, spatial indexes) at different pool sizes. The acceptance
// target for this PR is >=2x at workers=4 vs workers=1.
func BenchmarkNewEngine(b *testing.B) {
	city := benchCity(b)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewEngine(city, EngineOptions{Interval: benchInterval(), Parallelism: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineRun measures the online query path. Allocations per op are
// part of the acceptance criteria: hoisting the road/zone KD-trees out of
// buildMatrix must show up as a drop versus rebuilding them per query.
func BenchmarkEngineRun(b *testing.B) {
	city := benchCity(b)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e, err := NewEngine(city, EngineOptions{Interval: benchInterval(), Parallelism: workers})
			if err != nil {
				b.Fatal(err)
			}
			q := Query{
				POIs:           POIsOf(city, synth.POISchool),
				Budget:         0.1,
				Model:          ModelOLS,
				SamplesPerHour: 6,
				Workers:        workers,
				Parallelism:    workers,
				Seed:           1,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineRunWarmBank measures the repeat-query path the label bank
// targets: the same query against a segment warmed by one prior run, so
// every trip drains instead of pricing. bank=false re-runs the identical
// shape without a bank as the in-benchmark baseline; the delta is the SPQ
// savings as wall-clock.
func BenchmarkEngineRunWarmBank(b *testing.B) {
	city := benchCity(b)
	e, err := NewEngine(city, EngineOptions{Interval: benchInterval(), Parallelism: 4})
	if err != nil {
		b.Fatal(err)
	}
	q := Query{
		POIs:           POIsOf(city, synth.POISchool),
		Budget:         0.1,
		Model:          ModelOLS,
		SamplesPerHour: 6,
		Workers:        4,
		Parallelism:    4,
		Seed:           1,
	}
	for _, banked := range []bool{false, true} {
		b.Run(fmt.Sprintf("bank=%v", banked), func(b *testing.B) {
			qq := q
			if banked {
				qq.Bank = bank.New(bank.Config{}).Segment(city.Name, 1)
				if _, err := e.Run(qq); err != nil { // warm the segment
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(qq); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLoadEngine compares cold-start snapshot decoding across format
// versions: v1 gob decode (every leaf and node array re-allocated and
// re-parsed) versus the v2 flat layout (sections checksum-verified and
// aliased straight out of the mapping). The sub-benchmarks isolate the
// decode step — city regeneration is identical for both formats and would
// only dilute the format comparison. The acceptance target for this PR is
// >=10x for v2-mmap over v1-gob.
func BenchmarkLoadEngine(b *testing.B) {
	city := benchCity(b)
	e, err := NewEngine(city, EngineOptions{Interval: benchInterval(), Parallelism: 4})
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	v1 := filepath.Join(dir, "v1.snap")
	v2 := filepath.Join(dir, "v2.snap")
	if err := e.saveSnapshotV1(v1); err != nil {
		b.Fatal(err)
	}
	if err := e.SaveSnapshot(v2); err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		path string
	}{
		{"v1-gob", v1},
		{"v2-mmap", v2},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := readSnapshot(bc.path); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
