package core

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"os"
	"sort"

	"accessquery/internal/geo"
	"accessquery/internal/graph"
	"accessquery/internal/gtfs"
	"accessquery/internal/hoptree"
	"accessquery/internal/isochrone"
	"accessquery/internal/synth"
)

// Format v1 snapshots gob-encoded the hop forest and isochrone set in
// their original map-based shapes. Gob matches struct fields by name, so
// these shadow types decode old files exactly even though the live types
// have since moved to flat slices. Everything here exists only to read
// (and, for tests, write) v1 files.

type legacyLeaf struct {
	Zone           int
	Visits         int
	Routes         map[gtfs.RouteID]struct{}
	JourneySeconds []float64
	BestWalk       float64
}

type legacyTree struct {
	Zone      int
	Direction hoptree.Direction
	Interval  gtfs.Interval
	Leaves    map[int]*legacyLeaf
}

type legacyForest struct {
	Interval gtfs.Interval
	Out      []*legacyTree
	In       []*legacyTree
}

type legacyIsochrone struct {
	Origin     geo.Point
	OriginNode graph.NodeID
	Tau        float64
	Nodes      map[graph.NodeID]float64
	Hull       geo.Polygon
}

type legacyIsoSet struct {
	Tau        float64
	Isochrones []*legacyIsochrone
}

type legacySnapshot struct {
	CityConfig synth.Config
	Interval   gtfs.Interval
	Tau        float64
	Hops       int
	Isochrones *legacyIsoSet
	Forest     *legacyForest
}

// fromLegacy converts a decoded v1 payload to the live flat structures.
// Leaf journey sums accumulate in recorded order, so AvgJourney matches
// the value the v1 reader would have computed bit-for-bit.
func (ls *legacySnapshot) fromLegacy() (*Snapshot, error) {
	if ls.Isochrones == nil || ls.Forest == nil {
		return nil, fmt.Errorf("missing forest or isochrones")
	}
	isos := &isochrone.Set{Tau: ls.Isochrones.Tau, Isochrones: make([]*isochrone.Isochrone, len(ls.Isochrones.Isochrones))}
	for z, li := range ls.Isochrones.Isochrones {
		if li == nil {
			return nil, fmt.Errorf("zone %d has no isochrone", z)
		}
		ids := make([]graph.NodeID, 0, len(li.Nodes))
		for id := range li.Nodes {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		secs := make([]float64, len(ids))
		for i, id := range ids {
			secs[i] = li.Nodes[id]
		}
		isos.Isochrones[z] = &isochrone.Isochrone{
			Origin:      li.Origin,
			OriginNode:  li.OriginNode,
			Tau:         li.Tau,
			NodeIDs:     ids,
			NodeSeconds: secs,
			Hull:        li.Hull,
		}
	}
	trees := func(src []*legacyTree) ([]*hoptree.Tree, error) {
		out := make([]*hoptree.Tree, len(src))
		for z, lt := range src {
			if lt == nil {
				return nil, fmt.Errorf("zone %d has no hop tree", z)
			}
			zones := make([]int, 0, len(lt.Leaves))
			for lz := range lt.Leaves {
				zones = append(zones, lz)
			}
			sort.Ints(zones)
			leaves := make([]hoptree.Leaf, 0, len(zones))
			for _, lz := range zones {
				ll := lt.Leaves[lz]
				var sum float64
				for _, s := range ll.JourneySeconds {
					sum += s
				}
				leaves = append(leaves, hoptree.Leaf{
					Zone:         int32(lz),
					Visits:       int32(ll.Visits),
					Routes:       int32(len(ll.Routes)),
					JourneyCount: int32(len(ll.JourneySeconds)),
					JourneySum:   sum,
					BestWalk:     ll.BestWalk,
				})
			}
			out[z] = &hoptree.Tree{Zone: lt.Zone, Direction: lt.Direction, Interval: lt.Interval, Leaves: leaves}
		}
		return out, nil
	}
	outTrees, err := trees(ls.Forest.Out)
	if err != nil {
		return nil, err
	}
	inTrees, err := trees(ls.Forest.In)
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		CityConfig: ls.CityConfig,
		Interval:   ls.Interval,
		Tau:        ls.Tau,
		Hops:       ls.Hops,
		Isochrones: isos,
		Forest:     &hoptree.Forest{Interval: ls.Forest.Interval, Out: outTrees, In: inTrees},
	}, nil
}

// toLegacy converts live structures back to the v1 wire shape. Lossy
// detail a v1 reader never consumed is synthesised value-faithfully: each
// leaf's journey list becomes [sum, 0, 0, ...] with JourneyCount entries
// (adding zeros is exact in floating point, so the decoded average is
// unchanged) and route sets get distinct placeholder IDs so RouteCount
// survives the round trip.
func toLegacy(snap *Snapshot) *legacySnapshot {
	lisos := &legacyIsoSet{Tau: snap.Isochrones.Tau, Isochrones: make([]*legacyIsochrone, len(snap.Isochrones.Isochrones))}
	for z, iso := range snap.Isochrones.Isochrones {
		nodes := make(map[graph.NodeID]float64, len(iso.NodeIDs))
		for i, id := range iso.NodeIDs {
			nodes[id] = iso.NodeSeconds[i]
		}
		lisos.Isochrones[z] = &legacyIsochrone{
			Origin:     iso.Origin,
			OriginNode: iso.OriginNode,
			Tau:        iso.Tau,
			Nodes:      nodes,
			Hull:       iso.Hull,
		}
	}
	trees := func(src []*hoptree.Tree) []*legacyTree {
		out := make([]*legacyTree, len(src))
		for z, t := range src {
			leaves := make(map[int]*legacyLeaf, len(t.Leaves))
			for i := range t.Leaves {
				l := &t.Leaves[i]
				journeys := make([]float64, l.JourneyCount)
				if l.JourneyCount > 0 {
					journeys[0] = l.JourneySum
				}
				routes := make(map[gtfs.RouteID]struct{}, l.Routes)
				for r := int32(0); r < l.Routes; r++ {
					routes[gtfs.RouteID(fmt.Sprintf("r%d", r))] = struct{}{}
				}
				leaves[int(l.Zone)] = &legacyLeaf{
					Zone:           int(l.Zone),
					Visits:         int(l.Visits),
					Routes:         routes,
					JourneySeconds: journeys,
					BestWalk:       l.BestWalk,
				}
			}
			out[z] = &legacyTree{Zone: t.Zone, Direction: t.Direction, Interval: t.Interval, Leaves: leaves}
		}
		return out
	}
	return &legacySnapshot{
		CityConfig: snap.CityConfig,
		Interval:   snap.Interval,
		Tau:        snap.Tau,
		Hops:       snap.Hops,
		Isochrones: lisos,
		Forest:     &legacyForest{Interval: snap.Forest.Interval, Out: trees(snap.Forest.Out), In: trees(snap.Forest.In)},
	}
}

// decodeSnapshotV1 decodes a verified v1 gob payload into the live shapes.
func decodeSnapshotV1(path string, payload []byte) (*Snapshot, error) {
	var ls legacySnapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ls); err != nil {
		return nil, &SnapshotError{Path: path, Reason: "decoding payload", Err: err}
	}
	snap, err := ls.fromLegacy()
	if err != nil {
		return nil, &SnapshotError{Path: path, Reason: err.Error()}
	}
	return snap, nil
}

// saveSnapshotV1 writes the engine's structures in the legacy v1 format —
// 48-byte header plus one gob payload. Kept (unexported) so read-compat
// tests can produce genuine v1 files with a current build.
func (e *Engine) saveSnapshotV1(path string) error {
	snap := e.buildSnapshot(0)
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(toLegacy(snap)); err != nil {
		return fmt.Errorf("core: encoding v1 snapshot: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())

	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	w := bufio.NewWriter(file)
	header := make([]byte, 0, snapshotV1HeaderLen)
	header = append(header, snapshotMagic...)
	header = binary.BigEndian.AppendUint16(header, snapshotV1Version)
	header = binary.BigEndian.AppendUint64(header, uint64(payload.Len()))
	header = append(header, sum[:]...)
	if _, err := w.Write(header); err != nil {
		file.Close()
		return fmt.Errorf("core: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		file.Close()
		return fmt.Errorf("core: %w", err)
	}
	if err := w.Flush(); err != nil {
		file.Close()
		return fmt.Errorf("core: %w", err)
	}
	return file.Close()
}
