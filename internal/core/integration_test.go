package core

import (
	"path/filepath"
	"testing"

	"accessquery/internal/gtfs"
	"accessquery/internal/synth"
)

// TestEngineOverRoundTrippedGTFS drives the whole stack through the CSV
// layer: the synthetic city's timetable is written as GTFS text files, read
// back, substituted into the city, and the engine must produce identical
// answers — proving the serialization preserves everything the pipeline
// consumes.
func TestEngineOverRoundTrippedGTFS(t *testing.T) {
	city, err := synth.Generate(synth.Scaled(synth.Coventry(), 0.08))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "gtfs")
	if err := city.Feed.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	feed2, err := gtfs.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	city2, err := synth.Generate(synth.Scaled(synth.Coventry(), 0.08))
	if err != nil {
		t.Fatal(err)
	}
	city2.Feed = feed2

	opts := EngineOptions{Interval: gtfs.Interval{Start: 7 * 3600, End: 9 * 3600, Day: 2}}
	e1, err := NewEngine(city, opts)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(city2, opts)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{
		POIs:           POIsOf(city, synth.POISchool),
		Budget:         0.2,
		Model:          ModelOLS,
		SamplesPerHour: 6,
		Seed:           3,
	}
	r1, err := e1.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.MAC {
		if r1.Valid[i] != r2.Valid[i] {
			t.Fatalf("zone %d validity differs after GTFS round trip", i)
		}
		if r1.MAC[i] != r2.MAC[i] || r1.ACSD[i] != r2.ACSD[i] {
			t.Fatalf("zone %d measures differ after GTFS round trip: %f/%f vs %f/%f",
				i, r1.MAC[i], r1.ACSD[i], r2.MAC[i], r2.ACSD[i])
		}
	}
	if r1.Fairness != r2.Fairness {
		t.Errorf("fairness differs: %f vs %f", r1.Fairness, r2.Fairness)
	}
}
