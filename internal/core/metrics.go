package core

import "accessquery/internal/obs"

// Engine metrics, registered once in the process-wide registry. The stage
// histograms mirror the paper's Table II cost decomposition as live
// latency distributions; aq_engine_spqs_total makes the SPQ workload — the
// quantity the budgeted labeling exists to reduce — directly scrapeable.
var (
	mQueries      = obs.Counter("aq_engine_queries_total")
	mQueryErrors  = obs.Counter("aq_engine_query_errors_total")
	mSPQs         = obs.Counter("aq_engine_spqs_total")
	mQuerySeconds = obs.Histogram("aq_engine_query_seconds")

	stageMatrix   = obs.Histogram(`aq_engine_stage_seconds{stage="matrix"}`)
	stageSampling = obs.Histogram(`aq_engine_stage_seconds{stage="sampling"}`)
	stageLabeling = obs.Histogram(`aq_engine_stage_seconds{stage="labeling"}`)
	stageFeatures = obs.Histogram(`aq_engine_stage_seconds{stage="features"}`)
	stageTraining = obs.Histogram(`aq_engine_stage_seconds{stage="training"}`)
)

func init() {
	obs.Default.SetHelp("aq_engine_queries_total", "Access queries started (RunContext).")
	obs.Default.SetHelp("aq_engine_query_errors_total", "Access queries that returned an error.")
	obs.Default.SetHelp("aq_engine_spqs_total", "Shortest-path-query equivalents priced during labeling.")
	obs.Default.SetHelp("aq_engine_query_seconds", "End-to-end online query latency.")
	obs.Default.SetHelp("aq_engine_stage_seconds", "Online query latency by pipeline stage (Table II decomposition).")
}
