package core

import (
	"fmt"
	"sync"

	"accessquery/internal/obs"
)

// Engine metrics, registered once in the process-wide registry. The stage
// histograms mirror the paper's Table II cost decomposition as live
// latency distributions; aq_engine_spqs_total makes the SPQ workload — the
// quantity the budgeted labeling exists to reduce — directly scrapeable.
var (
	mQueries      = obs.Counter("aq_engine_queries_total")
	mQueryErrors  = obs.Counter("aq_engine_query_errors_total")
	mSPQs         = obs.Counter("aq_engine_spqs_total")
	mQuerySeconds = obs.Histogram("aq_engine_query_seconds")

	// Degradation-ladder visibility: every fired rung and every transient
	// SPQ outcome is scrapeable, so a chaos run can reconcile injected
	// faults against retries + abandoned searches. The degraded counter is
	// additionally labeled by city (see degradedCounter) so a multi-tenant
	// server can tell which tenant's engine is under pressure.
	mSPQRetries   = obs.Counter("aq_engine_spq_retries_total")
	mSPQAbandoned = obs.Counter("aq_engine_spq_abandoned_total")

	stageMatrix   = obs.Histogram(`aq_engine_stage_seconds{stage="matrix"}`)
	stageSampling = obs.Histogram(`aq_engine_stage_seconds{stage="sampling"}`)
	stageLabeling = obs.Histogram(`aq_engine_stage_seconds{stage="labeling"}`)
	stageFeatures = obs.Histogram(`aq_engine_stage_seconds{stage="features"}`)
	stageTraining = obs.Histogram(`aq_engine_stage_seconds{stage="training"}`)

	// mParallelism reports the worker count of the most recently built
	// engine, so a speedup observed in the prep histograms can be correlated
	// with the knob that produced it.
	mParallelism = obs.Gauge("aq_engine_parallelism")

	// Offline pre-processing decomposed by stage, the Fig. 1 (left) costs.
	// These are the stages the Parallelism knob fans out (plus the one-off
	// spatial-index build the KD-tree hoisting moved here from the per-query
	// path).
	prepIsochrones = obs.Histogram(`aq_engine_prep_seconds{stage="isochrones"}`)
	prepHopTrees   = obs.Histogram(`aq_engine_prep_seconds{stage="hoptrees"}`)
	prepIndexes    = obs.Histogram(`aq_engine_prep_seconds{stage="spatial_index"}`)
	prepTotal      = obs.Histogram(`aq_engine_prep_seconds{stage="total"}`)
)

// degradedCounters memoizes the {rung, city}-labeled degraded counter so
// the degradation path stays allocation-light after the first fire per
// pair.
var degradedCounters sync.Map // "rung\x00city" -> *obs.CounterMetric

// degradedCounter returns aq_engine_degraded_total labeled with the fired
// rung and the city whose engine degraded.
func degradedCounter(rung DegradationRung, city string) *obs.CounterMetric {
	key := string(rung) + "\x00" + city
	if c, ok := degradedCounters.Load(key); ok {
		return c.(*obs.CounterMetric)
	}
	c := obs.Counter(fmt.Sprintf("aq_engine_degraded_total{rung=%q,city=%q}", rung, city))
	degradedCounters.Store(key, c)
	return c
}

func init() {
	obs.Default.SetHelp("aq_engine_queries_total", "Access queries started (RunContext).")
	obs.Default.SetHelp("aq_engine_query_errors_total", "Access queries that returned an error.")
	obs.Default.SetHelp("aq_engine_spqs_total", "Shortest-path-query equivalents priced during labeling.")
	obs.Default.SetHelp("aq_engine_query_seconds", "End-to-end online query latency.")
	obs.Default.SetHelp("aq_engine_degraded_total", "Degradation-ladder rungs fired by runs that answered degraded instead of failing.")
	obs.Default.SetHelp("aq_engine_spq_retries_total", "Profile searches re-attempted after a transient failure.")
	obs.Default.SetHelp("aq_engine_spq_abandoned_total", "Profile searches given up after exhausting the retry cap.")
	obs.Default.SetHelp("aq_engine_stage_seconds", "Online query latency by pipeline stage (Table II decomposition).")
	obs.Default.SetHelp("aq_engine_parallelism", "Worker count of the most recently built engine (EngineOptions.Parallelism).")
	obs.Default.SetHelp("aq_engine_prep_seconds", "Offline pre-processing latency by stage (isochrones, hop trees, spatial indexes).")
}
