//go:build unix

package core

import (
	"os"
	"runtime"
	"syscall"
)

// snapMapping holds a snapshot file's bytes, either mmap'd (PROT_READ,
// shared) or heap-read when mapping is unavailable. Engines restored from
// a v2 snapshot keep a reference so the mapping outlives every structure
// that aliases it; the finalizer unmaps once the last engine is collected.
type snapMapping struct {
	data   []byte
	mapped bool
}

// mapSnapshot maps path read-only. Zero-length and unmappable files fall
// back to a heap read so callers see uniform behaviour.
func mapSnapshot(path string) (*snapMapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size <= 0 || int64(int(size)) != size {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return &snapMapping{data: raw}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, err
		}
		return &snapMapping{data: raw}, nil
	}
	m := &snapMapping{data: data, mapped: true}
	runtime.SetFinalizer(m, (*snapMapping).close)
	return m, nil
}

func (m *snapMapping) close() {
	if m.mapped && m.data != nil {
		_ = syscall.Munmap(m.data)
	}
	m.data = nil
	m.mapped = false
}

// residentBytes reports how many bytes the mapping pins to the file; 0 for
// heap-read snapshots, whose memory is ordinary Go heap.
func (m *snapMapping) residentBytes() int64 {
	if m == nil || !m.mapped {
		return 0
	}
	return int64(len(m.data))
}
