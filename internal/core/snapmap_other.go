//go:build !unix

package core

import "os"

// snapMapping is the heap-read fallback for platforms without mmap: the
// whole file is read into ordinary Go memory and "close" is a no-op.
type snapMapping struct {
	data   []byte
	mapped bool
}

func mapSnapshot(path string) (*snapMapping, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &snapMapping{data: raw}, nil
}

func (m *snapMapping) close() {
	m.data = nil
}

func (m *snapMapping) residentBytes() int64 { return 0 }
