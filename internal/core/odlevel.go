package core

import (
	"fmt"
	"math"
	"time"

	"accessquery/internal/access"
)

// RunOD answers an access query learning at the OD level — the alternative
// granularity Section IV-C of the paper weighs against origin-level
// aggregation. One feature vector and one target (the pair's mean access
// cost) is produced per (zone, POI) pair with positive attractiveness;
// predictions for unlabeled zones' pairs are aggregated back to zone MAC
// with the α weights.
//
// As the paper notes, the weighted aggregation of standard deviations is
// "computationally challenging and accuracy is hard to ensure": the ACSD
// reported here is the α-weighted dispersion of predicted pair means, which
// omits within-pair temporal variance and therefore under-estimates ACSD.
// The GNN is zone-transductive and is not supported at this granularity.
func (e *Engine) RunOD(q Query) (*Result, error) {
	q = q.withDefaults()
	if len(q.POIs) == 0 {
		return nil, fmt.Errorf("core: query has no POIs")
	}
	if q.Budget <= 0 || q.Budget > 1 {
		return nil, fmt.Errorf("core: budget %f outside (0, 1]", q.Budget)
	}
	if q.Model == ModelGNN {
		return nil, fmt.Errorf("core: GNN is zone-transductive and unsupported at OD granularity")
	}
	nz := len(e.zonePts)
	res := &Result{
		MAC:     make([]float64, nz),
		ACSD:    make([]float64, nz),
		Valid:   make([]bool, nz),
		Labeled: make([]bool, nz),
	}
	t0 := time.Now()
	m, poiNodes, poiZones, err := e.buildMatrix(q)
	if err != nil {
		return nil, err
	}
	res.Matrix = m
	res.Timing.Matrix = time.Since(t0)

	nl := int(float64(nz)*q.Budget + 0.5)
	if nl < 2 {
		nl = 2
	}
	if nl > nz {
		nl = nz
	}
	labeledSet, err := sampleZones(q.Sampling, e.zonePts, nl, q.Seed)
	if err != nil {
		return nil, err
	}

	// Label at pair level.
	t0 = time.Now()
	labeler := &access.Labeler{
		Router: e.router, Matrix: m, ZoneNode: e.City.ZoneNode,
		POINode: poiNodes, Cost: q.Cost, Params: q.CostParams,
	}
	var xRows, yRows [][]float64
	isLabeled := make([]bool, nz)
	for _, zone := range labeledSet {
		pairs, err := labeler.LabelZonePairs(zone)
		if err != nil {
			return nil, err
		}
		if len(pairs) == 0 {
			continue
		}
		isLabeled[zone] = true
		// Record the exact zone measures for labeled zones.
		var macSum, wsum float64
		for _, pm := range pairs {
			v, err := e.extractor.PairVector(zone, q.POIs[pm.POI], poiZones[pm.POI])
			if err != nil {
				return nil, err
			}
			xRows = append(xRows, v)
			yRows = append(yRows, []float64{pm.Mean})
			macSum += pm.Alpha * pm.Mean
			wsum += pm.Alpha
		}
		res.Valid[zone] = true
		res.Labeled[zone] = true
		res.MAC[zone] = macSum / wsum
		res.ACSD[zone] = weightedStd(pairs, res.MAC[zone])
	}
	res.Timing.Labeling = time.Since(t0)
	res.Timing.SPQs = labeler.SPQs
	if len(xRows) < 2 {
		return nil, fmt.Errorf("core: only %d labelable pairs at budget %.3f", len(xRows), q.Budget)
	}

	// Features for unlabeled zones' pairs.
	t0 = time.Now()
	type pairRef struct {
		zone  int
		alpha float64
	}
	var xuRows [][]float64
	var refs []pairRef
	for zone := 0; zone < nz; zone++ {
		if isLabeled[zone] {
			continue
		}
		for _, pt := range m.Row(zone) {
			v, err := e.extractor.PairVector(zone, q.POIs[pt.POI], poiZones[pt.POI])
			if err != nil {
				return nil, err
			}
			xuRows = append(xuRows, v)
			refs = append(refs, pairRef{zone: zone, alpha: pt.Alpha})
		}
	}
	res.Timing.Features = time.Since(t0)

	// Train and infer pair costs.
	t0 = time.Now()
	if len(xuRows) > 0 {
		preds, _, err := e.trainPredict(q, nil, nil, xRows, yRows, xuRows)
		if err != nil {
			return nil, err
		}
		// Aggregate predictions per zone.
		macSum := make([]float64, nz)
		wsum := make([]float64, nz)
		perZone := make(map[int][]struct{ w, v float64 })
		for r, ref := range refs {
			v := preds.At(r, 0)
			if v < 0 {
				v = 0
			}
			macSum[ref.zone] += ref.alpha * v
			wsum[ref.zone] += ref.alpha
			perZone[ref.zone] = append(perZone[ref.zone], struct{ w, v float64 }{ref.alpha, v})
		}
		for zone := 0; zone < nz; zone++ {
			if isLabeled[zone] || wsum[zone] == 0 {
				continue
			}
			mac := macSum[zone] / wsum[zone]
			res.MAC[zone] = mac
			var varSum float64
			for _, pv := range perZone[zone] {
				varSum += pv.w * (pv.v - mac) * (pv.v - mac)
			}
			res.ACSD[zone] = math.Sqrt(varSum / wsum[zone])
			res.Valid[zone] = true
		}
	}
	res.Timing.Training = time.Since(t0)

	e.finishMeasures(res)
	return res, nil
}

// weightedStd computes the α-weighted dispersion of pair means around the
// zone MAC.
func weightedStd(pairs []access.PairMeasure, mac float64) float64 {
	var varSum, wsum float64
	for _, pm := range pairs {
		varSum += pm.Alpha * (pm.Mean - mac) * (pm.Mean - mac)
		wsum += pm.Alpha
	}
	if wsum == 0 {
		return 0
	}
	return math.Sqrt(varSum / wsum)
}
