package core

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"accessquery/internal/gtfs"
	"accessquery/internal/synth"
)

// parallelTestCity is a seeded synthetic city shared by the equality tests.
var parallelTestCity = struct {
	once sync.Once
	city *synth.City
	err  error
}{}

func equalityCity(t testing.TB) *synth.City {
	parallelTestCity.once.Do(func() {
		parallelTestCity.city, parallelTestCity.err = synth.Generate(synth.Scaled(synth.Coventry(), 0.08))
	})
	if parallelTestCity.err != nil {
		t.Fatal(parallelTestCity.err)
	}
	return parallelTestCity.city
}

func equalityEngine(t testing.TB, parallelism int) *Engine {
	e, err := NewEngine(equalityCity(t), EngineOptions{
		Interval:    gtfs.Interval{Start: 7 * 3600, End: 9 * 3600, Day: time.Tuesday, Label: "AM peak"},
		Parallelism: parallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestPrepParallelMatchesSerial pins the tentpole's determinism contract for
// the offline phase: isochrone set and hop-tree forest must be deep-equal
// between a serial and a 4-worker build.
func TestPrepParallelMatchesSerial(t *testing.T) {
	serial := equalityEngine(t, 1)
	parallel := equalityEngine(t, 4)
	if !reflect.DeepEqual(serial.isos, parallel.isos) {
		t.Error("isochrone sets differ between Parallelism 1 and 4")
	}
	if !reflect.DeepEqual(serial.forest, parallel.forest) {
		t.Error("hop-tree forests differ between Parallelism 1 and 4")
	}
}

// sameResult compares everything except Timing (wall-clock necessarily
// differs across runs).
func sameResult(t *testing.T, a, b *Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(a.MAC, b.MAC) {
		t.Errorf("%s: MAC differs", label)
	}
	if !reflect.DeepEqual(a.ACSD, b.ACSD) {
		t.Errorf("%s: ACSD differs", label)
	}
	if !reflect.DeepEqual(a.Valid, b.Valid) {
		t.Errorf("%s: Valid differs", label)
	}
	if !reflect.DeepEqual(a.Labeled, b.Labeled) {
		t.Errorf("%s: Labeled differs", label)
	}
	if !reflect.DeepEqual(a.Classes, b.Classes) {
		t.Errorf("%s: Classes differ", label)
	}
	if a.Fairness != b.Fairness {
		t.Errorf("%s: fairness %v != %v", label, a.Fairness, b.Fairness)
	}
	if a.WalkOnlyShare != b.WalkOnlyShare {
		t.Errorf("%s: walk-only share %v != %v", label, a.WalkOnlyShare, b.WalkOnlyShare)
	}
	if a.Timing.SPQs != b.Timing.SPQs {
		t.Errorf("%s: SPQs %d != %d", label, a.Timing.SPQs, b.Timing.SPQs)
	}
}

// TestRunParallelMatchesSerial covers the full online path: a query on a
// serially-prepped engine with a serial feature stage must produce the same
// result as a parallel-prepped engine with a 4-worker feature stage and
// 4-worker labeling. Run under -race in CI this doubles as the data-race
// regression test for the shared extractor caches.
func TestRunParallelMatchesSerial(t *testing.T) {
	serial := equalityEngine(t, 1)
	parallel := equalityEngine(t, 4)
	for _, model := range []ModelKind{ModelOLS, ModelMLP} {
		q := Query{
			POIs:           POIsOf(serial.City, synth.POISchool),
			Budget:         0.2,
			Model:          model,
			SamplesPerHour: 8,
			Seed:           7,
		}
		qs := q
		qs.Workers = 1
		qs.Parallelism = 1
		qp := q
		qp.Workers = 4
		qp.Parallelism = 4
		rs, err := serial.Run(qs)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := parallel.Run(qp)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, rs, rp, string(model))
	}
}

// TestOriginFeatureMatrixParallelMatchesSerial pins the feature stage alone:
// the per-zone origin vectors must be identical whether computed serially or
// on a 4-worker pool (including the α-weights coming from the same matrix).
func TestOriginFeatureMatrixParallelMatchesSerial(t *testing.T) {
	e := equalityEngine(t, 2)
	q := Query{
		POIs:           POIsOf(e.City, synth.POIHospital),
		Budget:         0.2,
		SamplesPerHour: 8,
		Seed:           3,
	}
	m, _, poiZones, err := e.buildMatrix(q.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	nz := len(e.zonePts)
	want := make([][]float64, nz)
	for zone := 0; zone < nz; zone++ {
		v, err := e.extractor.OriginVector(zone, m.Row(zone), q.POIs, poiZones)
		if err != nil {
			t.Fatal(err)
		}
		want[zone] = v
	}
	// Fresh engine so the parallel pass starts from cold caches — the
	// worst case for determinism under concurrency.
	e2 := equalityEngine(t, 4)
	m2, _, poiZones2, err := e2.buildMatrix(q.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	got := make([][]float64, nz)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for zone := range jobs {
				v, err := e2.extractor.OriginVector(zone, m2.Row(zone), q.POIs, poiZones2)
				if err != nil {
					t.Error(err)
					return
				}
				got[zone] = v
			}
		}()
	}
	for zone := 0; zone < nz; zone++ {
		jobs <- zone
	}
	close(jobs)
	wg.Wait()
	if !reflect.DeepEqual(want, got) {
		t.Error("origin-feature matrix differs between serial and 4-worker computation")
	}
}

// TestConcurrentQueriesWithParallelFeatures hammers one engine with
// concurrent queries that each fan their feature stage across workers — the
// serving-layer shape. Meaningful under -race: it proves the RWMutex-guarded
// extractor caches survive nested parallelism (queries × feature workers).
func TestConcurrentQueriesWithParallelFeatures(t *testing.T) {
	e := equalityEngine(t, 4)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			_, err := e.Run(Query{
				POIs:           POIsOf(e.City, synth.POISchool),
				Budget:         0.15,
				Model:          ModelOLS,
				SamplesPerHour: 6,
				Parallelism:    4,
				Seed:           seed,
			})
			if err != nil {
				t.Error(err)
			}
		}(int64(i + 1))
	}
	wg.Wait()
}

func TestGroundTruthContextCancellation(t *testing.T) {
	e := equalityEngine(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.GroundTruthContext(ctx, Query{
		POIs:           POIsOf(e.City, synth.POISchool),
		Budget:         0.2,
		SamplesPerHour: 6,
		Seed:           1,
	})
	if err == nil {
		t.Fatal("cancelled ground-truth run should fail")
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Errorf("want context.Canceled, got %v", err)
	}
}

// TestLabelZonesReportsSPQsOnError pins the satellite fix: when labeling
// fails partway, the SPQs already priced must still be reported instead of
// the old hardcoded zero.
func TestLabelZonesReportsSPQsOnError(t *testing.T) {
	e := equalityEngine(t, 1)
	q := Query{
		POIs:           POIsOf(e.City, synth.POISchool),
		Budget:         0.2,
		SamplesPerHour: 8,
		Seed:           5,
	}
	q = q.withDefaults()
	m, poiNodes, _, err := e.buildMatrix(q)
	if err != nil {
		t.Fatal(err)
	}
	// Every valid zone first, then one out-of-range zone to force the
	// error after real SPQ work has happened.
	zones := make([]int, 0, len(e.zonePts)/2+1)
	for z := 0; z < len(e.zonePts)/2; z++ {
		zones = append(zones, z)
	}
	zones = append(zones, len(e.City.ZoneNode)) // out of range -> error

	for name, workers := range map[string]int{"serial": 1, "parallel": 4} {
		qq := q
		qq.Workers = workers
		lo, err := e.labelZones(context.Background(), qq, m, poiNodes, zones, time.Time{})
		if err == nil {
			t.Fatalf("%s: expected error from out-of-range zone", name)
		}
		if lo.spqs <= 0 {
			t.Errorf("%s: errored labeling reported %d SPQs, want > 0", name, lo.spqs)
		}
	}
}
