package core

import (
	"math"
	"testing"
	"time"

	"accessquery/internal/access"
	"accessquery/internal/gtfs"
	"accessquery/internal/metrics"
	"accessquery/internal/synth"
)

// testEngine builds one engine over a small city, shared across tests.
var sharedEngine *Engine

func engine(t testing.TB) *Engine {
	if sharedEngine != nil {
		return sharedEngine
	}
	c, err := synth.Generate(synth.Scaled(synth.Coventry(), 0.1))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(c, EngineOptions{
		Interval: gtfs.Interval{Start: 7 * 3600, End: 9 * 3600, Day: time.Tuesday, Label: "AM peak"},
	})
	if err != nil {
		t.Fatal(err)
	}
	sharedEngine = e
	return e
}

func vaxQuery(e *Engine, model ModelKind, budget float64) Query {
	return Query{
		POIs:           POIsOf(e.City, synth.POIVaxCenter),
		Cost:           access.JourneyTime,
		Budget:         budget,
		Model:          model,
		SamplesPerHour: 10,
		Seed:           99,
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, EngineOptions{}); err == nil {
		t.Error("nil city should fail")
	}
	c, err := synth.Generate(synth.Scaled(synth.Coventry(), 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(c, EngineOptions{}); err == nil {
		t.Error("empty interval should fail")
	}
}

func TestRunValidation(t *testing.T) {
	e := engine(t)
	if _, err := e.Run(Query{Budget: 0.1}); err == nil {
		t.Error("no POIs should fail")
	}
	q := vaxQuery(e, ModelOLS, 0)
	if _, err := e.Run(q); err == nil {
		t.Error("zero budget should fail")
	}
	q.Budget = 1.5
	if _, err := e.Run(q); err == nil {
		t.Error("budget > 1 should fail")
	}
	q.Budget = 0.2
	q.Model = "bogus"
	if _, err := e.Run(q); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestRunProducesCompleteMeasures(t *testing.T) {
	e := engine(t)
	res, err := e.Run(vaxQuery(e, ModelMLP, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	nz := len(e.City.Zones)
	if len(res.MAC) != nz || len(res.ACSD) != nz || len(res.Classes) != nz {
		t.Fatal("result arrays wrong length")
	}
	validCount, labeledCount := 0, 0
	for i := 0; i < nz; i++ {
		if res.Valid[i] {
			validCount++
			if res.MAC[i] < 0 || res.ACSD[i] < 0 {
				t.Errorf("zone %d has negative measures: %f/%f", i, res.MAC[i], res.ACSD[i])
			}
			if math.IsNaN(res.MAC[i]) || math.IsNaN(res.ACSD[i]) {
				t.Errorf("zone %d has NaN measures", i)
			}
		}
		if res.Labeled[i] {
			labeledCount++
			if !res.Valid[i] {
				t.Errorf("zone %d labeled but invalid", i)
			}
		}
	}
	if validCount < nz*3/4 {
		t.Errorf("only %d of %d zones valid", validCount, nz)
	}
	wantLabeled := int(float64(nz)*0.3 + 0.5)
	if labeledCount > wantLabeled {
		t.Errorf("labeled %d zones, budget allows %d", labeledCount, wantLabeled)
	}
	if res.Fairness <= 0 || res.Fairness > 1 {
		t.Errorf("fairness = %f", res.Fairness)
	}
	if res.Timing.SPQs <= 0 {
		t.Error("no SPQs recorded")
	}
	if res.Timing.Total() <= 0 {
		t.Error("no time recorded")
	}
	if res.WalkOnlyShare < 0 || res.WalkOnlyShare > 1 {
		t.Errorf("walk-only share = %f", res.WalkOnlyShare)
	}
}

func TestGroundTruthLabelsEverything(t *testing.T) {
	e := engine(t)
	res, err := e.GroundTruth(vaxQuery(e, ModelMLP, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Valid {
		if v && !res.Labeled[i] {
			t.Errorf("zone %d valid but not labeled in ground truth", i)
		}
	}
	if res.Timing.SPQs != res.Matrix.Size() {
		t.Errorf("ground truth SPQs = %d, matrix size %d", res.Timing.SPQs, res.Matrix.Size())
	}
}

func TestSSRBeatsNaiveOnSPQCount(t *testing.T) {
	e := engine(t)
	q := vaxQuery(e, ModelOLS, 0.1)
	ssr, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := e.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	if ssr.Timing.SPQs >= gt.Timing.SPQs {
		t.Errorf("SSR used %d SPQs, naive used %d", ssr.Timing.SPQs, gt.Timing.SPQs)
	}
	// At beta=0.1 the SPQ reduction should be roughly 90%.
	ratio := float64(ssr.Timing.SPQs) / float64(gt.Timing.SPQs)
	if ratio > 0.25 {
		t.Errorf("SPQ ratio = %f, want < 0.25 at budget 0.1", ratio)
	}
}

func TestPredictionsCorrelateWithGroundTruth(t *testing.T) {
	e := engine(t)
	q := vaxQuery(e, ModelMLP, 0.3)
	ssr, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := e.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	var pred, truth []float64
	for i := range ssr.MAC {
		if ssr.Valid[i] && gt.Valid[i] && !ssr.Labeled[i] {
			pred = append(pred, ssr.MAC[i])
			truth = append(truth, gt.MAC[i])
		}
	}
	if len(pred) < 10 {
		t.Fatalf("only %d comparable zones", len(pred))
	}
	r, err := metrics.Pearson(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.5 {
		t.Errorf("MAC correlation = %f, want > 0.5 at budget 0.3", r)
	}
}

func TestAllModelsRun(t *testing.T) {
	e := engine(t)
	for _, model := range append(append([]ModelKind{}, AllModels...), ExtensionModels...) {
		res, err := e.Run(vaxQuery(e, model, 0.3))
		if err != nil {
			t.Errorf("%s: %v", model, err)
			continue
		}
		var any bool
		for i := range res.Valid {
			if res.Valid[i] && !res.Labeled[i] {
				any = true
				break
			}
		}
		if !any {
			t.Errorf("%s produced no inferred zones", model)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	e := engine(t)
	q := vaxQuery(e, ModelMLP, 0.2)
	r1, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.MAC {
		if r1.MAC[i] != r2.MAC[i] || r1.ACSD[i] != r2.ACSD[i] {
			t.Fatalf("zone %d differs across identical runs", i)
		}
	}
}

func TestDifferentCostsGiveDifferentAnswers(t *testing.T) {
	e := engine(t)
	qJT := vaxQuery(e, ModelOLS, 0.5)
	qGAC := qJT
	qGAC.Cost = access.Generalized
	rJT, err := e.Run(qJT)
	if err != nil {
		t.Fatal(err)
	}
	rGAC, err := e.Run(qGAC)
	if err != nil {
		t.Fatal(err)
	}
	// GAC weights out-of-vehicle time 2x and adds fares, so labeled zone
	// MACs must be at least the JT MACs.
	for i := range rJT.MAC {
		if rJT.Labeled[i] && rGAC.Labeled[i] && rGAC.MAC[i] < rJT.MAC[i] {
			t.Errorf("zone %d GAC MAC %f < JT MAC %f", i, rGAC.MAC[i], rJT.MAC[i])
		}
	}
}

func TestPOIsOf(t *testing.T) {
	e := engine(t)
	pts := POIsOf(e.City, synth.POISchool)
	if len(pts) != len(e.City.POIs[synth.POISchool]) {
		t.Errorf("POIsOf returned %d points", len(pts))
	}
	if len(POIsOf(e.City, "nonexistent")) != 0 {
		t.Error("unknown category should be empty")
	}
}

func BenchmarkRunSSR(b *testing.B) {
	e := engine(b)
	q := vaxQuery(e, ModelOLS, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(q); err != nil {
			b.Fatal(err)
		}
	}
}
