package core

import (
	"math"
	"testing"

	"accessquery/internal/geo"
)

// gridZones returns n zone centroids on a rough grid around Birmingham.
func gridZones(n int) []geo.Point {
	base := geo.Point{Lat: 52.48, Lon: -1.89}
	pts := make([]geo.Point, n)
	side := int(math.Ceil(math.Sqrt(float64(n))))
	for i := range pts {
		pts[i] = geo.Offset(base, float64(i%side)*500, float64(i/side)*500)
	}
	return pts
}

func TestSampleZonesValidation(t *testing.T) {
	pts := gridZones(10)
	if _, err := sampleZones(SampleRandom, pts, 0, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := sampleZones(SampleRandom, pts, 11, 1); err == nil {
		t.Error("n > zones should fail")
	}
	if _, err := sampleZones("bogus", pts, 3, 1); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestSampleZonesBasicProperties(t *testing.T) {
	pts := gridZones(100)
	for _, strategy := range []SamplingStrategy{SampleRandom, SampleCoverage, SampleStratified, SampleCluster, ""} {
		got, err := sampleZones(strategy, pts, 17, 42)
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		if len(got) != 17 {
			t.Fatalf("%s: got %d zones, want 17", strategy, len(got))
		}
		seen := map[int]bool{}
		for i, z := range got {
			if z < 0 || z >= len(pts) {
				t.Fatalf("%s: zone %d out of range", strategy, z)
			}
			if seen[z] {
				t.Fatalf("%s: duplicate zone %d", strategy, z)
			}
			seen[z] = true
			if i > 0 && got[i] < got[i-1] {
				t.Fatalf("%s: result not sorted", strategy)
			}
		}
		// Determinism.
		again, err := sampleZones(strategy, pts, 17, 42)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != again[i] {
				t.Fatalf("%s: not deterministic", strategy)
			}
		}
	}
}

// minPairwiseSpread returns the minimum over zones of the distance to the
// nearest sampled zone — the coverage quality measure.
func maxGapToSample(pts []geo.Point, sample []int) float64 {
	worst := 0.0
	for i := range pts {
		best := math.Inf(1)
		for _, s := range sample {
			if d := geo.DistanceMeters(pts[i], pts[s]); d < best {
				best = d
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}

func TestCoverageSamplingCoversBetterThanRandom(t *testing.T) {
	pts := gridZones(400)
	n := 12
	cov, err := sampleZones(SampleCoverage, pts, n, 7)
	if err != nil {
		t.Fatal(err)
	}
	covGap := maxGapToSample(pts, cov)
	// Average random gap over several seeds.
	var randGap float64
	const trials = 5
	for seed := int64(0); seed < trials; seed++ {
		r, err := sampleZones(SampleRandom, pts, n, seed)
		if err != nil {
			t.Fatal(err)
		}
		randGap += maxGapToSample(pts, r)
	}
	randGap /= trials
	if covGap >= randGap {
		t.Errorf("coverage max-gap %f should beat random %f", covGap, randGap)
	}
}

func TestStratifiedSamplingSpreads(t *testing.T) {
	pts := gridZones(400)
	n := 16
	str, err := sampleZones(SampleStratified, pts, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	// All four quadrants of the grid should be represented.
	bounds := geo.NewRect(pts)
	midLat := (bounds.MinLat + bounds.MaxLat) / 2
	midLon := (bounds.MinLon + bounds.MaxLon) / 2
	quads := map[int]bool{}
	for _, z := range str {
		q := 0
		if pts[z].Lat > midLat {
			q += 2
		}
		if pts[z].Lon > midLon {
			q++
		}
		quads[q] = true
	}
	if len(quads) < 4 {
		t.Errorf("stratified sample covers %d quadrants, want 4", len(quads))
	}
}

// TestClusterSamplingSpreadsAndRepresents: one representative per k-means
// cluster should cover the grid at least as well as an average random
// draw, and edge sizes (n=1, n=len) must not trip the Lloyd loop.
func TestClusterSamplingSpreads(t *testing.T) {
	pts := gridZones(400)
	n := 12
	cl, err := sampleZones(SampleCluster, pts, n, 7)
	if err != nil {
		t.Fatal(err)
	}
	clGap := maxGapToSample(pts, cl)
	var randGap float64
	const trials = 5
	for seed := int64(0); seed < trials; seed++ {
		r, err := sampleZones(SampleRandom, pts, n, seed)
		if err != nil {
			t.Fatal(err)
		}
		randGap += maxGapToSample(pts, r)
	}
	randGap /= trials
	if clGap >= randGap {
		t.Errorf("cluster max-gap %f should beat average random %f", clGap, randGap)
	}
	for _, n := range []int{1, len(pts)} {
		got, err := sampleZones(SampleCluster, pts, n, 3)
		if err != nil || len(got) != n {
			t.Errorf("n=%d: got %d zones, err %v", n, len(got), err)
		}
	}
}

func TestSamplingStrategyInQuery(t *testing.T) {
	e := engine(t)
	for _, strategy := range []SamplingStrategy{SampleCoverage, SampleStratified, SampleCluster} {
		q := vaxQuery(e, ModelOLS, 0.15)
		q.Sampling = strategy
		res, err := e.Run(q)
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		var labeled int
		for _, l := range res.Labeled {
			if l {
				labeled++
			}
		}
		if labeled == 0 {
			t.Errorf("%s: no zones labeled", strategy)
		}
	}
}

func TestParallelLabelingMatchesSerial(t *testing.T) {
	e := engine(t)
	q := vaxQuery(e, ModelOLS, 0.3)
	serial, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	q.Workers = 4
	parallel, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Timing.SPQs != parallel.Timing.SPQs {
		t.Errorf("SPQ counts differ: %d vs %d", serial.Timing.SPQs, parallel.Timing.SPQs)
	}
	for i := range serial.MAC {
		if serial.MAC[i] != parallel.MAC[i] || serial.ACSD[i] != parallel.ACSD[i] {
			t.Fatalf("zone %d differs between serial and parallel labeling", i)
		}
		if serial.Labeled[i] != parallel.Labeled[i] {
			t.Fatalf("zone %d labeled flag differs", i)
		}
	}
}

func TestParallelGroundTruthMatchesSerial(t *testing.T) {
	e := engine(t)
	q := vaxQuery(e, ModelOLS, 1)
	serial, err := e.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	q.Workers = 4
	parallel, err := e.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.MAC {
		if serial.MAC[i] != parallel.MAC[i] {
			t.Fatalf("zone %d ground truth differs under parallel labeling", i)
		}
	}
}
