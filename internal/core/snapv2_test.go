package core

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"accessquery/internal/hoptree"
)

// TestSnapshotV1ReadCompat proves the current build still reads legacy v1
// files: a v1 snapshot written with the (test-only) v1 writer restores an
// engine whose query answers match the live engine byte for byte.
func TestSnapshotV1ReadCompat(t *testing.T) {
	e := engine(t)
	path := filepath.Join(t.TempDir(), "legacy.snap")
	if err := e.saveSnapshotV1(path); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadEngine(path)
	if err != nil {
		t.Fatal(err)
	}
	if src := restored.SnapshotInfo(); src == nil || src.Version != 1 {
		t.Fatalf("SnapshotInfo = %+v, want version 1", src)
	}
	q := vaxQuery(e, ModelOLS, 0.2)
	want, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.MAC {
		if want.MAC[i] != got.MAC[i] || want.ACSD[i] != got.ACSD[i] {
			t.Fatalf("zone %d differs after v1 snapshot restore", i)
		}
	}
}

// TestSnapshotV2DeepEquality checks the flat sections reproduce the
// original structures exactly — every leaf, node array, and hull ring —
// whether they come back aliased from a mapping or copied to the heap.
func TestSnapshotV2DeepEquality(t *testing.T) {
	e := engine(t)
	path := filepath.Join(t.TempDir(), "flat.snap")
	if err := e.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadEngine(path)
	if err != nil {
		t.Fatal(err)
	}
	nz := e.Forest().Zones()
	if restored.Forest().Zones() != nz {
		t.Fatalf("restored forest has %d zones, want %d", restored.Forest().Zones(), nz)
	}
	// A zone with no leaves round-trips as an empty (non-nil) subslice of
	// the flat store, so compare element-wise rather than DeepEqual on the
	// slice headers.
	leavesEqual := func(a, b []hoptree.Leaf) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if !reflect.DeepEqual(a[i], b[i]) {
				return false
			}
		}
		return true
	}
	for z := 0; z < nz; z++ {
		for _, dir := range []struct {
			name      string
			got, want []hoptree.Leaf
		}{
			{"out", restored.Forest().Outbound(z).Leaves, e.Forest().Outbound(z).Leaves},
			{"in", restored.Forest().Inbound(z).Leaves, e.Forest().Inbound(z).Leaves},
		} {
			if !leavesEqual(dir.got, dir.want) {
				t.Fatalf("zone %d %sbound leaves differ after v2 restore", z, dir.name)
			}
		}
		a, b := e.isos.For(z), restored.isos.For(z)
		if !reflect.DeepEqual(a.NodeIDs, b.NodeIDs) || !reflect.DeepEqual(a.NodeSeconds, b.NodeSeconds) {
			t.Fatalf("zone %d walkshed nodes differ after v2 restore", z)
		}
		if !reflect.DeepEqual(a.Hull, b.Hull) || a.Origin != b.Origin || a.OriginNode != b.OriginNode {
			t.Fatalf("zone %d hull/origin differ after v2 restore", z)
		}
	}
}

// TestSnapshotV2Provenance checks the meta section round-trips the
// producing epoch and city, through both the cheap inspection path and a
// full load.
func TestSnapshotV2Provenance(t *testing.T) {
	e := engine(t)
	path := filepath.Join(t.TempDir(), "prov.snap")
	before := time.Now().Unix()
	if err := e.SaveSnapshotEpoch(path, 7); err != nil {
		t.Fatal(err)
	}
	info, err := InspectSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 || info.Epoch != 7 || info.City != e.City.Config.Name {
		t.Fatalf("InspectSnapshot = %+v, want version 2, epoch 7, city %q", info, e.City.Config.Name)
	}
	if info.CreatedUnix < before || info.CreatedUnix > time.Now().Unix() {
		t.Errorf("created_unix %d outside the save window", info.CreatedUnix)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.SizeBytes != st.Size() {
		t.Errorf("size %d, want file size %d", info.SizeBytes, st.Size())
	}
	restored, err := LoadEngine(path)
	if err != nil {
		t.Fatal(err)
	}
	src := restored.SnapshotInfo()
	if src == nil {
		t.Fatal("loaded engine has no SnapshotInfo")
	}
	if src.Checksum == "" || src.Checksum != info.Checksum {
		t.Errorf("load checksum %q != inspect checksum %q", src.Checksum, info.Checksum)
	}
	if src.Epoch != 7 || src.Version != 2 {
		t.Errorf("SnapshotInfo = %+v, want version 2 epoch 7", src)
	}
	// Derived engines share the mapping, so they must carry the source.
	d, _, err := restored.Derive(DeriveSpec{City: restored.City})
	if err == nil && d.SnapshotInfo() != src {
		t.Error("derived engine dropped the snapshot source")
	}
}

// TestSnapshotV2RejectsSectionDamage extends the damaged-variants table
// with v2-specific corruption: a byte flipped deep inside a numeric
// section and a renamed table entry must both be precise SnapshotErrors,
// never a crash or a silently wrong engine.
func TestSnapshotV2RejectsSectionDamage(t *testing.T) {
	e := engine(t)
	dir := t.TempDir()
	good := filepath.Join(dir, "good.snap")
	if err := e.SaveSnapshot(good); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		reason string
	}{
		{"flipped_section_byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			// Flip the first byte of the first section, located via the
			// table so the mutation never lands in alignment padding.
			off := binary.BigEndian.Uint64(c[snapV2HeaderLen+16 : snapV2HeaderLen+24])
			c[off] ^= 0x40
			return c
		}, "checksum"},
		{"renamed_section", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			// Overwrite the first table entry's name ("meta").
			copy(c[snapV2HeaderLen:], "zeta\x00\x00\x00\x00")
			return c
		}, "missing section"},
		{"zero_sections", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[8], c[9], c[10], c[11] = 0, 0, 0, 0
			return c
		}, "section table"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name)
			if err := os.WriteFile(path, tc.mutate(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadEngine(path)
			if err == nil {
				t.Fatal("damaged snapshot should fail to load")
			}
			serr, ok := err.(*SnapshotError)
			if !ok {
				t.Fatalf("want *SnapshotError, got %T: %v", err, err)
			}
			if !strings.Contains(serr.Reason, tc.reason) {
				t.Errorf("reason %q does not mention %q", serr.Reason, tc.reason)
			}
		})
	}
}

// TestSnapshotV1RejectsDamage runs the v1 reader's failure paths against
// genuine v1 files from the test-only writer.
func TestSnapshotV1RejectsDamage(t *testing.T) {
	e := engine(t)
	dir := t.TempDir()
	good := filepath.Join(dir, "good.snap")
	if err := e.saveSnapshotV1(good); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		reason string
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)-64] }, "truncated"},
		{"flipped_payload", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0x55
			return c
		}, "checksum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name)
			if err := os.WriteFile(path, tc.mutate(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadEngine(path)
			if err == nil {
				t.Fatal("damaged v1 snapshot should fail to load")
			}
			serr, ok := err.(*SnapshotError)
			if !ok {
				t.Fatalf("want *SnapshotError, got %T: %v", err, err)
			}
			if !strings.Contains(serr.Reason, tc.reason) {
				t.Errorf("reason %q does not mention %q", serr.Reason, tc.reason)
			}
		})
	}
}

// TestSnapshotV2ColdStartSpeedup is the acceptance check for the v2
// format: opening (verifying + aliasing) a v2 snapshot must beat
// gob-decoding the same engine's v1 snapshot by >=10x. Both sides measure
// only the snapshot-decode step — city regeneration is identical for both
// formats and would only dilute the comparison.
func TestSnapshotV2ColdStartSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	e := engine(t)
	dir := t.TempDir()
	v1 := filepath.Join(dir, "v1.snap")
	v2 := filepath.Join(dir, "v2.snap")
	if err := e.saveSnapshotV1(v1); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveSnapshot(v2); err != nil {
		t.Fatal(err)
	}
	measure := func(path string) time.Duration {
		// One warm-up pulls the file into the page cache so the timing
		// compares decode work, not first-touch disk I/O.
		if _, _, err := readSnapshot(path); err != nil {
			t.Fatal(err)
		}
		const rounds = 5
		best := time.Duration(1<<63 - 1)
		for i := 0; i < rounds; i++ {
			start := time.Now()
			if _, _, err := readSnapshot(path); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	gob := measure(v1)
	mmap := measure(v2)
	t.Logf("v1 gob decode %v, v2 open %v (%.1fx)", gob, mmap, float64(gob)/float64(mmap))
	if float64(gob) < 10*float64(mmap) {
		t.Errorf("v2 open is only %.1fx faster than v1 gob decode, want >=10x", float64(gob)/float64(mmap))
	}
}
