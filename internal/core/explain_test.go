package core

import (
	"context"
	"strings"
	"testing"

	"accessquery/internal/obs"
)

// buildExplainTrace assembles a trace shaped like a served query run —
// job root, queue wait, query with the five engine stages — with the
// attribute vocabulary the engine records.
func buildExplainTrace() *obs.Trace {
	tr := obs.NewTrace()
	ctx := obs.WithTrace(context.Background(), tr)
	ctx, job := obs.Start(ctx, "job", nil)
	obs.RecordSpan(ctx, "queue_wait", 0)
	qctx, query := obs.Start(ctx, "query", nil)
	query.SetString("model", "MLP")
	query.SetInt("zones", 50)

	_, sp := obs.Start(qctx, "matrix", nil)
	sp.SetInt("trips", 1200)
	sp.SetInt("full_trips", 6000)
	sp.SetFloat("reduction_pct", 80)
	sp.End()
	_, sp = obs.Start(qctx, "sampling", nil)
	sp.End()
	_, sp = obs.Start(qctx, "labeling", nil)
	sp.SetInt("spqs", 10)
	sp.SetInt("labeled_zones", 10)
	sp.End()
	_, sp = obs.Start(qctx, "features", nil)
	sp.SetInt("cache_hits", 40)
	sp.SetInt("cache_misses", 10)
	sp.End()
	_, sp = obs.Start(qctx, "training", nil)
	sp.SetInt("iterations", 200)
	sp.SetBool("converged", true)
	sp.SetFloat("rmse_mac", 123.5)
	sp.SetFloat("r2_mac", 0.9)
	sp.End()

	query.End()
	job.End()
	return tr
}

func TestExplainFieldMapping(t *testing.T) {
	r := Explain(buildExplainTrace().Summary())
	if r == nil {
		t.Fatal("Explain returned nil for a populated trace")
	}
	if r.Model != "MLP" || r.Zones != 50 {
		t.Errorf("model/zones = %s/%d", r.Model, r.Zones)
	}
	if r.MatrixTrips != 1200 || r.MatrixFullTrips != 6000 || r.MatrixReductionPct != 80 {
		t.Errorf("matrix fields = %d/%d/%.1f", r.MatrixTrips, r.MatrixFullTrips, r.MatrixReductionPct)
	}
	if r.SPQs != 10 || r.LabeledZones != 10 {
		t.Errorf("labeling fields = %d/%d", r.SPQs, r.LabeledZones)
	}
	if r.FeatureCacheHits != 40 || r.FeatureCacheMisses != 10 {
		t.Errorf("cache fields = %d/%d", r.FeatureCacheHits, r.FeatureCacheMisses)
	}
	if r.TrainingIterations != 200 || !r.TrainingConverged {
		t.Errorf("training fields = %d/%v", r.TrainingIterations, r.TrainingConverged)
	}
	if r.RMSEMAC != 123.5 || r.R2MAC != 0.9 {
		t.Errorf("fit fields = %.1f/%.2f", r.RMSEMAC, r.R2MAC)
	}
	if r.Trace == nil || r.TraceID == "" {
		t.Error("report must carry the trace and its ID")
	}

	// Stage rows cover the serving wait plus all five engine stages, in
	// execution order.
	names := make([]string, len(r.Stages))
	for i, st := range r.Stages {
		names[i] = st.Name
	}
	want := []string{"queue_wait", "matrix", "sampling", "labeling", "features", "training"}
	if len(names) != len(want) {
		t.Fatalf("stages = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("stages = %v, want %v (execution order)", names, want)
		}
	}
}

func TestExplainTolerates(t *testing.T) {
	if Explain(nil) != nil {
		t.Error("Explain(nil) should be nil")
	}
	// A partial trace (errored run that never reached training) still
	// yields a report with the stages that did run.
	tr := obs.NewTrace()
	ctx := obs.WithTrace(context.Background(), tr)
	_, sp := obs.Start(ctx, "matrix", nil)
	sp.SetInt("trips", 5)
	sp.End()
	r := Explain(tr.Summary())
	if r == nil || r.MatrixTrips != 5 {
		t.Fatalf("partial report = %+v", r)
	}
	if len(r.Stages) != 1 || r.Stages[0].Name != "matrix" {
		t.Errorf("partial stages = %+v", r.Stages)
	}
	if r.TrainingConverged {
		t.Error("missing training should read as not converged")
	}
}

func TestExplainWriteText(t *testing.T) {
	var b strings.Builder
	Explain(buildExplainTrace().Summary()).WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"model=MLP",
		"todam: 1200 trips (full 6000, 80.0% reduction)",
		"labeling: 10/50 zones labeled, 10 SPQs",
		"feature cache: 40 hits, 10 misses",
		"training: 200 iterations, converged=true",
		"queue_wait", "matrix", "sampling", "features",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
	var nilReport *ExplainReport
	nilReport.WriteText(&b) // must not panic
}
