package core

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	e := engine(t)
	path := filepath.Join(t.TempDir(), "engine.gob")
	if err := e.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadEngine(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.City.Zones) != len(e.City.Zones) {
		t.Fatalf("restored city has %d zones, want %d",
			len(restored.City.Zones), len(e.City.Zones))
	}
	if restored.Forest().Zones() != e.Forest().Zones() {
		t.Fatal("forest zone counts differ")
	}
	// A query on the restored engine gives byte-identical results.
	q := vaxQuery(e, ModelOLS, 0.2)
	want, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.MAC {
		if want.MAC[i] != got.MAC[i] || want.ACSD[i] != got.ACSD[i] {
			t.Fatalf("zone %d differs after snapshot restore", i)
		}
	}
}

func TestLoadEngineMissingFile(t *testing.T) {
	if _, err := LoadEngine(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Error("missing snapshot should fail")
	}
}

func TestLoadEngineCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.gob")
	if err := writeFile(path, []byte("not a gob stream")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEngine(path); err == nil {
		t.Error("corrupt snapshot should fail")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
