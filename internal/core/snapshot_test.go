package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	e := engine(t)
	path := filepath.Join(t.TempDir(), "engine.gob")
	if err := e.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadEngine(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.City.Zones) != len(e.City.Zones) {
		t.Fatalf("restored city has %d zones, want %d",
			len(restored.City.Zones), len(e.City.Zones))
	}
	if restored.Forest().Zones() != e.Forest().Zones() {
		t.Fatal("forest zone counts differ")
	}
	// A query on the restored engine gives byte-identical results.
	q := vaxQuery(e, ModelOLS, 0.2)
	want, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.MAC {
		if want.MAC[i] != got.MAC[i] || want.ACSD[i] != got.ACSD[i] {
			t.Fatalf("zone %d differs after snapshot restore", i)
		}
	}
}

func TestLoadEngineMissingFile(t *testing.T) {
	var serr *SnapshotError
	_, err := LoadEngine(filepath.Join(t.TempDir(), "nope.gob"))
	if err == nil {
		t.Fatal("missing snapshot should fail")
	}
	if !errors.As(err, &serr) {
		t.Errorf("want *SnapshotError, got %T: %v", err, err)
	}
}

func TestLoadEngineCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.gob")
	if err := writeFile(path, []byte("not a gob stream")); err != nil {
		t.Fatal(err)
	}
	var serr *SnapshotError
	if _, err := LoadEngine(path); err == nil {
		t.Fatal("corrupt snapshot should fail")
	} else if !errors.As(err, &serr) {
		t.Errorf("want *SnapshotError, got %T: %v", err, err)
	} else if !strings.Contains(serr.Reason, "header") && !strings.Contains(serr.Reason, "magic") {
		t.Errorf("reason %q should name the bad header", serr.Reason)
	}
}

// Every damaged variant of a valid snapshot must be rejected with a
// *SnapshotError whose Reason names what went wrong — never a raw gob
// decode error.
func TestLoadEngineRejectsDamagedSnapshots(t *testing.T) {
	e := engine(t)
	dir := t.TempDir()
	good := filepath.Join(dir, "good.snap")
	if err := e.SaveSnapshot(good); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
		reason string // substring the SnapshotError must carry
	}{
		{"truncated_header", func(b []byte) []byte { return b[:10] }, "truncated"},
		{"truncated_payload", func(b []byte) []byte { return b[:len(b)-100] }, "truncated"},
		{"bad_magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			copy(c, "NOTSNP")
			return c
		}, "magic"},
		{"future_version", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[6], c[7] = 0xff, 0xff
			return c
		}, "version"},
		{"flipped_payload_byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0x55
			return c
		}, "checksum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name)
			if err := writeFile(path, tc.mutate(raw)); err != nil {
				t.Fatal(err)
			}
			_, err := LoadEngine(path)
			if err == nil {
				t.Fatal("damaged snapshot should fail to load")
			}
			var serr *SnapshotError
			if !errors.As(err, &serr) {
				t.Fatalf("want *SnapshotError, got %T: %v", err, err)
			}
			if !strings.Contains(serr.Reason, tc.reason) {
				t.Errorf("reason %q does not mention %q", serr.Reason, tc.reason)
			}
		})
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
