// Incremental engine derivation for the scenario delta layer.
//
// A full NewEngine run recomputes every offline stage. Deriving instead
// starts from an existing engine and replaces only what a network mutation
// can actually change: transit mutations invalidate hop trees (forest),
// the feature extractor built over them, and the timetable router; POI and
// zone-weight mutations invalidate nothing offline at all, because POIs
// and weights enter only at query time through the TODAM spec. Walking
// isochrones, zone centroids, and the spatial indexes depend solely on the
// road network and zone geometry, which no mutation kind touches, so they
// are always shared with the base engine.
package core

import (
	"fmt"
	"time"

	"accessquery/internal/features"
	"accessquery/internal/gtfs"
	"accessquery/internal/hoptree"
	"accessquery/internal/router"
	"accessquery/internal/synth"
)

// ScenarioSummary is the provenance block a derived engine carries: how
// many delta batches and mutations produced it and the cumulative blast
// radius. The serving layer copies it into trace spans so ?explain=1 can
// report what the scenario rebuild actually did.
type ScenarioSummary struct {
	// Deltas is the number of applied mutation batches.
	Deltas int
	// Mutations is the total mutation count across batches.
	Mutations int
	// ZonesTouched and TreesRebuilt describe the latest batch's blast
	// radius (trees = outbound + inbound per touched zone).
	ZonesTouched int
	TreesRebuilt int
	// RebuildMS is the latest incremental rebuild's wall time;
	// FullPrepMS the measured from-scratch prep of the baseline engine,
	// the cost the delta path avoided.
	RebuildMS  int64
	FullPrepMS int64
}

// DeriveSpec describes one incremental derivation.
type DeriveSpec struct {
	// City is the mutated city. Its road network, zone set, and zone
	// centroids must be identical to the base engine's (mutations never
	// touch them); the timetable, POIs, and weights may differ.
	City *synth.City
	// Forest is the hop-tree forest over the mutated timetable, typically
	// from hoptree.RebuildZones. Nil means the timetable is unchanged and
	// the base's forest, extractor, and router are shared outright.
	Forest *hoptree.Forest
	// RebuiltZones lists the zones whose trees Forest rebuilt; the feature
	// caches of every other zone are seeded from the base extractor.
	RebuiltZones []int
}

// DeriveStats reports what a derivation reused versus rebuilt.
type DeriveStats struct {
	// RouterRebuilt is true when the timetable changed and the transit
	// index and router were reconstructed.
	RouterRebuilt bool
	// CacheEntriesSeeded and CacheEntriesDropped count feature-cache
	// entries copied from the base extractor versus discarded as
	// potentially stale.
	CacheEntriesSeeded  int
	CacheEntriesDropped int
}

// Derive builds an engine for the mutated city, reusing every base
// structure the mutation provably cannot have changed. The result is
// value-identical to NewEngine over the same city (the delta package's
// property tests assert deep equality); PrepDuration records only the
// incremental work.
func (e *Engine) Derive(spec DeriveSpec) (*Engine, DeriveStats, error) {
	var stats DeriveStats
	if spec.City == nil {
		return nil, stats, fmt.Errorf("core: derive: nil city")
	}
	if len(spec.City.Zones) != len(e.zonePts) {
		return nil, stats, fmt.Errorf("core: derive: city has %d zones, base engine %d",
			len(spec.City.Zones), len(e.zonePts))
	}
	start := time.Now()
	d := &Engine{
		City:        spec.City,
		Interval:    e.Interval,
		zonePts:     e.zonePts,
		isos:        e.isos,
		forest:      e.forest,
		extractor:   e.extractor,
		router:      e.router,
		zoneTree:    e.zoneTree,
		roadTree:    e.roadTree,
		parallelism: e.parallelism,
		routerOpts:  e.routerOpts,
		// Derived engines share (or alias) the base forest and isochrones,
		// which may live inside the base snapshot's file mapping.
		snapSrc: e.snapSrc,
	}
	// The GNN adjacency depends only on zone centroids, which are shared.
	e.adjMu.Lock()
	d.adjCache = e.adjCache
	e.adjMu.Unlock()
	if spec.Forest != nil && spec.Forest != e.forest {
		if spec.Forest.Zones() != len(e.zonePts) {
			return nil, stats, fmt.Errorf("core: derive: forest covers %d zones, base engine %d",
				spec.Forest.Zones(), len(e.zonePts))
		}
		extractor, err := features.NewExtractor(spec.Forest, e.zonePts, e.isos, e.extractor.Hops)
		if err != nil {
			return nil, stats, fmt.Errorf("core: derive: %w", err)
		}
		stats.CacheEntriesSeeded, stats.CacheEntriesDropped =
			extractor.SeedFrom(e.extractor, spec.RebuiltZones)
		ix := gtfs.NewIndex(spec.City.Feed, e.Interval.Day)
		rt, err := router.New(spec.City.Road, ix, spec.City.StopNode, e.routerOpts)
		if err != nil {
			return nil, stats, fmt.Errorf("core: derive: %w", err)
		}
		d.forest = spec.Forest
		d.extractor = extractor
		d.router = rt
		stats.RouterRebuilt = true
	}
	d.PrepDuration = time.Since(start)
	return d, stats, nil
}
