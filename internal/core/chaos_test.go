package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"accessquery/internal/fault"
)

// TestChaosSPQFaultRates runs the full engine under seeded SPQ fault
// injection at the issue's three rates, asserting that every run answers
// without error, that results stay structurally valid, that transient-
// failure accounting reconciles exactly against the injector, and that
// degradation reporting is monotone in the fault rate (the injector's
// monotone coupling makes higher rates strict supersets of lower ones).
func TestChaosSPQFaultRates(t *testing.T) {
	e := engine(t)
	prev := fault.Enable(nil)
	t.Cleanup(func() { fault.Enable(prev) })

	rates := []float64{0.01, 0.05, 0.2}
	severities := make([]int, len(rates))
	for i, rate := range rates {
		spec, err := fault.ParseSpec(fmt.Sprintf("seed=11;spq:fail=%g", rate))
		if err != nil {
			t.Fatal(err)
		}
		inj := fault.New(spec)
		fault.Enable(inj)
		res, err := e.RunContext(context.Background(), vaxQuery(e, ModelOLS, 0.3))
		fault.Disable()
		if err != nil {
			t.Fatalf("rate %g: run failed instead of degrading: %v", rate, err)
		}
		nz := len(e.zonePts)
		if len(res.MAC) != nz || len(res.ACSD) != nz || len(res.Valid) != nz || len(res.Labeled) != nz {
			t.Fatalf("rate %g: malformed result", rate)
		}
		for z, lab := range res.Labeled {
			if lab && !res.Valid[z] {
				t.Errorf("rate %g: zone %d labeled but not valid", rate, z)
			}
		}
		injected := inj.Counts()[fault.SiteSPQ]
		if got := res.Timing.SPQRetries + res.Timing.SPQAbandoned; got != injected {
			t.Errorf("rate %g: %d faults injected but %d retried + %d abandoned",
				rate, injected, res.Timing.SPQRetries, res.Timing.SPQAbandoned)
		}
		if d := res.Degraded; d != nil {
			if len(d.Rungs) == 0 || len(d.Rungs) != len(d.Reasons) {
				t.Errorf("rate %g: degraded report without matched rungs/reasons: %+v", rate, d)
			}
			if d.ZonesFailed == 0 && d.ZonesTruncated == 0 && !d.Has(RungModelFallback) {
				t.Errorf("rate %g: degraded without any lost zones: %+v", rate, d)
			}
			if d.BudgetEffective > d.BudgetRequested {
				t.Errorf("rate %g: effective budget %g above requested %g",
					rate, d.BudgetEffective, d.BudgetRequested)
			}
		}
		severities[i] = res.Degraded.Severity()
	}
	for i := 1; i < len(severities); i++ {
		if severities[i] < severities[i-1] {
			t.Errorf("degradation severity not monotone across rates %v: %v", rates, severities)
		}
	}
}

// TestChaosParallelLabeling repeats the highest-pressure chaos run with a
// worker pool, pinning that the parallel path also absorbs transient
// failures (rather than aborting the run) and keeps the accounting
// identity.
func TestChaosParallelLabeling(t *testing.T) {
	e := engine(t)
	spec, err := fault.ParseSpec("seed=11;spq:fail=0.2")
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(spec)
	prev := fault.Enable(inj)
	t.Cleanup(func() { fault.Enable(prev) })

	q := vaxQuery(e, ModelOLS, 0.3)
	q.Workers = 4
	res, err := e.RunContext(context.Background(), q)
	if err != nil {
		t.Fatalf("parallel chaos run failed instead of degrading: %v", err)
	}
	if got := res.Timing.SPQRetries + res.Timing.SPQAbandoned; got != inj.Counts()[fault.SiteSPQ] {
		t.Errorf("%d faults injected but %d retried + %d abandoned",
			inj.Counts()[fault.SiteSPQ], res.Timing.SPQRetries, res.Timing.SPQAbandoned)
	}
}

// TestDeadlineMidLabelingPartial is the acceptance criterion: a query
// whose deadline expires mid-labeling answers with a partial, labeled-only
// result within deadline + 10%.
func TestDeadlineMidLabelingPartial(t *testing.T) {
	e := engine(t)
	// 50ms per profile search makes even one zone cost ~a second: the
	// deadline is guaranteed to expire inside the first zones.
	slowSPQs(t, 50*time.Millisecond)
	const deadline = 500 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	res, err := e.RunContext(ctx, vaxQuery(e, ModelMLP, 0.3))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("mid-labeling deadline failed the run instead of degrading: %v", err)
	}
	if res.Degraded == nil || !res.Degraded.Has(RungPartial) {
		t.Fatalf("rungs = %v, want partial", res.Degraded)
	}
	if elapsed > deadline+deadline/10 {
		t.Errorf("partial answer took %v, over deadline %v + 10%%", elapsed, deadline)
	}
	for z := range res.Valid {
		if res.Valid[z] && !res.Labeled[z] {
			t.Errorf("zone %d carries an inferred value in a partial result", z)
		}
	}
}

// TestDegradedModelFallback forces the configured model to fail and
// asserts the run answers via OLS with the model_fallback rung instead of
// erroring. An unknown model must still fail fast: that is a caller
// mistake, not infrastructure trouble.
func TestDegradedModelFallback(t *testing.T) {
	e := engine(t)
	if _, err := e.Run(vaxQuery(e, ModelKind("XGBOOST"), 0.3)); err == nil {
		t.Error("unknown model should fail, not fall back")
	}
}
