package core

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"runtime"
	"time"

	"accessquery/internal/fault"
	"accessquery/internal/features"
	"accessquery/internal/gtfs"
	"accessquery/internal/hoptree"
	"accessquery/internal/isochrone"
	"accessquery/internal/router"
	"accessquery/internal/synth"
)

// Snapshot captures the expensive offline pre-processing of an engine —
// the walking isochrones and the transit-hop forest — together with the
// generating city configuration, so a server can restart without
// recomputing them. The city itself is regenerated deterministically from
// its config.
type Snapshot struct {
	CityConfig synth.Config
	Interval   gtfs.Interval
	Tau        float64
	Hops       int
	Isochrones *isochrone.Set
	Forest     *hoptree.Forest

	// Provenance recorded by the v2 format: the city name and engine epoch
	// that produced the snapshot, and the save time. Zero for v1 files,
	// which predate them.
	City        string
	Epoch       uint64
	CreatedUnix int64
}

// Two on-disk formats share the "AQSNAP" magic and a big-endian uint16
// version at offset 6, so either reader can identify the other's files and
// refuse them precisely. Version 1 is a 48-byte header (magic, version,
// payload length, SHA-256) followed by one gob payload; version 2 — the
// format SaveSnapshot writes — is the flat, mmap-able section layout
// documented in snapv2.go. Headers exist so a registry asked to hot-swap a
// snapshot can refuse a truncated copy, a partial write, or a file that is
// not a snapshot at all with a precise SnapshotError instead of surfacing
// whatever confusing state a decoder happens to trip over — and keep the
// old epoch serving.
const (
	snapshotMagic = "AQSNAP"

	snapshotV1Version   uint16 = 1
	snapshotV1HeaderLen        = 6 + 2 + 8 + sha256.Size

	// SnapshotVersion is the version SaveSnapshot writes. LoadEngine reads
	// this and the v1 format; anything else is refused rather than
	// mis-decoded.
	SnapshotVersion = snapshotV2Version
)

// SnapshotError reports why a snapshot file was rejected before (or while)
// decoding: wrong magic, unsupported version, truncation, or a checksum
// mismatch. The registry treats any SnapshotError as "refuse the swap,
// keep the current epoch".
type SnapshotError struct {
	Path   string
	Reason string
	Err    error // underlying error, when one exists
}

func (e *SnapshotError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("core: snapshot %s: %s: %v", e.Path, e.Reason, e.Err)
	}
	return fmt.Sprintf("core: snapshot %s: %s", e.Path, e.Reason)
}

func (e *SnapshotError) Unwrap() error { return e.Err }

// SnapshotSource describes the snapshot file an engine was restored from
// (or that InspectSnapshot examined). MmapBytes is non-zero only when the
// numeric sections are being served straight out of a file mapping.
type SnapshotSource struct {
	Path        string `json:"path"`
	Version     uint16 `json:"format_version"`
	SizeBytes   int64  `json:"size_bytes"`
	Checksum    string `json:"checksum"`
	MmapBytes   int64  `json:"mmap_resident_bytes"`
	City        string `json:"city,omitempty"`
	Epoch       uint64 `json:"epoch,omitempty"`
	CreatedUnix int64  `json:"created_unix,omitempty"`

	// mapping keeps the file mapping alive: every slice in the restored
	// engine's forest and isochrone set aliases it. It must not be
	// released while any engine (base or derived) still references this
	// source.
	mapping *snapMapping
}

// SnapshotInfo returns the source snapshot this engine (or its base, for
// derived engines) was restored from, or nil for engines built from
// scratch.
func (e *Engine) SnapshotInfo() *SnapshotSource { return e.snapSrc }

// buildSnapshot assembles the in-memory Snapshot for this engine, stamping
// the provenance fields.
func (e *Engine) buildSnapshot(epoch uint64) *Snapshot {
	return &Snapshot{
		CityConfig:  e.City.Config,
		Interval:    e.Interval,
		Tau:         e.isos.Tau,
		Hops:        e.extractor.Hops,
		Isochrones:  e.isos,
		Forest:      e.forest,
		City:        e.City.Config.Name,
		Epoch:       epoch,
		CreatedUnix: time.Now().Unix(),
	}
}

// SaveSnapshot writes the engine's pre-processed structures to path in the
// current (v2) snapshot format.
func (e *Engine) SaveSnapshot(path string) error { return e.SaveSnapshotEpoch(path, 0) }

// SaveSnapshotEpoch is SaveSnapshot with the producing engine epoch
// recorded in the snapshot's meta section, for servers that know it.
func (e *Engine) SaveSnapshotEpoch(path string, epoch uint64) error {
	sections, err := buildSnapshotSectionsV2(e.buildSnapshot(epoch))
	if err != nil {
		return fmt.Errorf("core: encoding snapshot: %w", err)
	}
	image, err := encodeSnapshotV2(sections)
	if err != nil {
		return fmt.Errorf("core: encoding snapshot: %w", err)
	}
	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	w := bufio.NewWriter(file)
	if _, err := w.Write(image); err != nil {
		file.Close()
		return fmt.Errorf("core: %w", err)
	}
	if err := w.Flush(); err != nil {
		file.Close()
		return fmt.Errorf("core: %w", err)
	}
	return file.Close()
}

// readSnapshot reads and verifies a snapshot file of either format. Every
// rejection is a *SnapshotError naming the precise reason. The returned
// source carries the mapping keep-alive for v2 files.
func readSnapshot(path string) (*Snapshot, *SnapshotSource, error) {
	m, err := mapSnapshot(path)
	if err != nil {
		return nil, nil, &SnapshotError{Path: path, Reason: "unreadable", Err: err}
	}
	raw := m.data
	if len(raw) < 8 {
		m.close()
		return nil, nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("truncated: %d bytes is shorter than the %d-byte header", len(raw), snapV2HeaderLen)}
	}
	if string(raw[:6]) != snapshotMagic {
		m.close()
		return nil, nil, &SnapshotError{Path: path, Reason: "not an accessquery snapshot (bad magic; re-save with a current build)"}
	}
	version := binary.BigEndian.Uint16(raw[6:8])
	switch version {
	case snapshotV1Version:
		snap, err := readSnapshotV1(path, raw)
		var checksum string
		if len(raw) >= snapshotV1HeaderLen {
			checksum = hex.EncodeToString(raw[16 : 16+sha256.Size])
		}
		m.close() // v1 decodes onto the heap; nothing aliases the file
		if err != nil {
			return nil, nil, err
		}
		src := &SnapshotSource{
			Path:      path,
			Version:   snapshotV1Version,
			SizeBytes: int64(len(raw)),
			Checksum:  checksum,
		}
		return snap, src, nil
	case snapshotV2Version:
		sections, err := parseSnapshotV2(path, raw)
		if err != nil {
			m.close()
			return nil, nil, err
		}
		snap, err := snapshotFromSections(path, sections)
		if err != nil {
			m.close()
			return nil, nil, err
		}
		tableEnd := snapV2HeaderLen + len(sections)*snapV2EntryLen
		sum := sha256.Sum256(raw[:tableEnd])
		src := &SnapshotSource{
			Path:        path,
			Version:     snapshotV2Version,
			SizeBytes:   int64(len(raw)),
			Checksum:    hex.EncodeToString(sum[:]),
			MmapBytes:   m.residentBytes(),
			City:        snap.City,
			Epoch:       snap.Epoch,
			CreatedUnix: snap.CreatedUnix,
			mapping:     m,
		}
		return snap, src, nil
	default:
		m.close()
		return nil, nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("unsupported format version %d (this build reads %d and %d)", version, snapshotV1Version, snapshotV2Version)}
	}
}

// readSnapshotV1 verifies the fixed v1 header — length and checksum — and
// gob-decodes the payload through the legacy shadow structs.
func readSnapshotV1(path string, raw []byte) (*Snapshot, error) {
	if len(raw) < snapshotV1HeaderLen {
		return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("truncated: %d bytes is shorter than the %d-byte header", len(raw), snapshotV1HeaderLen)}
	}
	declared := binary.BigEndian.Uint64(raw[8:16])
	payload := raw[snapshotV1HeaderLen:]
	if uint64(len(payload)) != declared {
		return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("truncated: header declares %d payload bytes, file has %d", declared, len(payload))}
	}
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], raw[16:16+sha256.Size]) {
		return nil, &SnapshotError{Path: path, Reason: "checksum mismatch (corrupt or partially written)"}
	}
	return decodeSnapshotV1(path, payload)
}

// InspectSnapshot reads just enough of a snapshot file to describe it —
// header, section table, and (for v2) the small meta section — without
// decoding or mapping the numeric payloads. Listing a directory of
// snapshots stays cheap regardless of their size.
func InspectSnapshot(path string) (*SnapshotSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, &SnapshotError{Path: path, Reason: "unreadable", Err: err}
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, &SnapshotError{Path: path, Reason: "unreadable", Err: err}
	}
	header := make([]byte, snapV2HeaderLen)
	if _, err := f.ReadAt(header, 0); err != nil {
		return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("truncated: %d bytes is shorter than the %d-byte header", st.Size(), snapV2HeaderLen)}
	}
	if string(header[:6]) != snapshotMagic {
		return nil, &SnapshotError{Path: path, Reason: "not an accessquery snapshot (bad magic; re-save with a current build)"}
	}
	version := binary.BigEndian.Uint16(header[6:8])
	src := &SnapshotSource{Path: path, Version: version, SizeBytes: st.Size()}
	switch version {
	case snapshotV1Version:
		h := make([]byte, snapshotV1HeaderLen)
		if _, err := f.ReadAt(h, 0); err != nil {
			return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("truncated: %d bytes is shorter than the %d-byte header", st.Size(), snapshotV1HeaderLen)}
		}
		src.Checksum = hex.EncodeToString(h[16 : 16+sha256.Size])
		return src, nil
	case snapshotV2Version:
		count := int(binary.BigEndian.Uint32(header[8:12]))
		if count <= 0 || count > 1<<10 {
			return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("implausible section count %d", count)}
		}
		table := make([]byte, snapV2HeaderLen+count*snapV2EntryLen)
		if _, err := f.ReadAt(table, 0); err != nil {
			return nil, &SnapshotError{Path: path, Reason: "truncated: section table is incomplete"}
		}
		sum := sha256.Sum256(table)
		src.Checksum = hex.EncodeToString(sum[:])
		for i := 0; i < count; i++ {
			entry := table[snapV2HeaderLen+i*snapV2EntryLen:]
			if string(bytes.TrimRight(entry[:16], "\x00")) != "meta" {
				continue
			}
			off := binary.BigEndian.Uint64(entry[16:24])
			length := binary.BigEndian.Uint64(entry[24:32])
			if length > 1<<24 || int64(off)+int64(length) > st.Size() {
				return nil, &SnapshotError{Path: path, Reason: "truncated: meta section is out of bounds"}
			}
			metaRaw := make([]byte, length)
			if _, err := f.ReadAt(metaRaw, int64(off)); err != nil {
				return nil, &SnapshotError{Path: path, Reason: "truncated: meta section is incomplete"}
			}
			if s := sha256.Sum256(metaRaw); !bytes.Equal(s[:], entry[32:64]) {
				return nil, &SnapshotError{Path: path, Reason: `checksum mismatch in section "meta" (corrupt or partially written)`}
			}
			var meta snapMetaV2
			if err := gob.NewDecoder(bytes.NewReader(metaRaw)).Decode(&meta); err != nil {
				return nil, &SnapshotError{Path: path, Reason: `malformed section "meta"`, Err: err}
			}
			src.City = meta.City
			src.Epoch = meta.Epoch
			src.CreatedUnix = meta.CreatedUnix
		}
		return src, nil
	default:
		return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("unsupported format version %d (this build reads %d and %d)", version, snapshotV1Version, snapshotV2Version)}
	}
}

// LoadEngine restores an engine from a snapshot: the header and checksums
// are verified (see SnapshotError), the city is regenerated from its
// recorded configuration (deterministic in the seed), and the pre-computed
// structures are installed without recomputation. For v2 snapshots the
// numeric sections are mmap'd and served in place — pages fault in lazily
// — instead of being gob-decoded onto the heap.
func LoadEngine(path string) (*Engine, error) {
	// Chaos-test injection site for snapshot load failures.
	if err := fault.Check(fault.SiteSnapshot); err != nil {
		return nil, fmt.Errorf("core: loading snapshot: %w", err)
	}
	snap, src, err := readSnapshot(path)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	city, err := synth.Generate(snap.CityConfig)
	if err != nil {
		return nil, fmt.Errorf("core: regenerating city: %w", err)
	}
	if snap.Forest == nil || snap.Isochrones == nil {
		return nil, &SnapshotError{Path: path, Reason: "missing forest or isochrones"}
	}
	if snap.Forest.Zones() != len(city.Zones) || len(snap.Isochrones.Isochrones) != len(city.Zones) {
		return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("does not match regenerated city (%d zones)", len(city.Zones))}
	}
	pts := zonePointsOf(city)
	extractor, err := features.NewExtractor(snap.Forest, pts, snap.Isochrones, snap.Hops)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	ix := gtfs.NewIndex(city.Feed, snap.Interval.Day)
	rt, err := router.New(city.Road, ix, city.StopNode, router.Options{})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	zoneTree, roadTree := buildSpatialIndexes(city, pts)
	eng := &Engine{
		City:      city,
		Interval:  snap.Interval,
		zonePts:   pts,
		isos:      snap.Isochrones,
		forest:    snap.Forest,
		extractor: extractor,
		router:    rt,
		zoneTree:  zoneTree,
		roadTree:  roadTree,
		snapSrc:   src,
		// A snapshot stores no knob; restored engines run queries serially
		// unless the query sets its own Parallelism.
		parallelism:  1,
		PrepDuration: time.Since(start),
	}
	// The mapping must stay referenced until the engine holds it; the
	// forest and isochrone slices alias it but are invisible to the GC.
	runtime.KeepAlive(src)
	return eng, nil
}
