package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"os"
	"time"

	"accessquery/internal/fault"
	"accessquery/internal/features"
	"accessquery/internal/gtfs"
	"accessquery/internal/hoptree"
	"accessquery/internal/isochrone"
	"accessquery/internal/router"
	"accessquery/internal/synth"
)

// Snapshot captures the expensive offline pre-processing of an engine —
// the walking isochrones and the transit-hop forest — together with the
// generating city configuration, so a server can restart without
// recomputing them. The city itself is regenerated deterministically from
// its config.
type Snapshot struct {
	CityConfig synth.Config
	Interval   gtfs.Interval
	Tau        float64
	Hops       int
	Isochrones *isochrone.Set
	Forest     *hoptree.Forest
}

// SaveSnapshot writes the engine's pre-processed structures to path.
func (e *Engine) SaveSnapshot(path string) error {
	snap := Snapshot{
		CityConfig: e.City.Config,
		Interval:   e.Interval,
		Tau:        e.isos.Tau,
		Hops:       e.extractor.Hops,
		Isochrones: e.isos,
		Forest:     e.forest,
	}
	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	w := bufio.NewWriter(file)
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		file.Close()
		return fmt.Errorf("core: encoding snapshot: %w", err)
	}
	if err := w.Flush(); err != nil {
		file.Close()
		return fmt.Errorf("core: %w", err)
	}
	return file.Close()
}

// LoadEngine restores an engine from a snapshot: the city is regenerated
// from its recorded configuration (deterministic in the seed) and the
// pre-computed structures are installed without recomputation.
func LoadEngine(path string) (*Engine, error) {
	// Chaos-test injection site for snapshot load failures.
	if err := fault.Check(fault.SiteSnapshot); err != nil {
		return nil, fmt.Errorf("core: loading snapshot: %w", err)
	}
	file, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	defer file.Close()
	var snap Snapshot
	if err := gob.NewDecoder(bufio.NewReader(file)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	start := time.Now()
	city, err := synth.Generate(snap.CityConfig)
	if err != nil {
		return nil, fmt.Errorf("core: regenerating city: %w", err)
	}
	if snap.Forest == nil || snap.Isochrones == nil {
		return nil, fmt.Errorf("core: snapshot missing forest or isochrones")
	}
	if snap.Forest.Zones() != len(city.Zones) || len(snap.Isochrones.Isochrones) != len(city.Zones) {
		return nil, fmt.Errorf("core: snapshot does not match regenerated city (%d zones)", len(city.Zones))
	}
	pts := zonePointsOf(city)
	extractor, err := features.NewExtractor(snap.Forest, pts, snap.Isochrones, snap.Hops)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	ix := gtfs.NewIndex(city.Feed, snap.Interval.Day)
	rt, err := router.New(city.Road, ix, city.StopNode, router.Options{})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	zoneTree, roadTree := buildSpatialIndexes(city, pts)
	return &Engine{
		City:      city,
		Interval:  snap.Interval,
		zonePts:   pts,
		isos:      snap.Isochrones,
		forest:    snap.Forest,
		extractor: extractor,
		router:    rt,
		zoneTree:  zoneTree,
		roadTree:  roadTree,
		// A snapshot stores no knob; restored engines run queries serially
		// unless the query sets its own Parallelism.
		parallelism:  1,
		PrepDuration: time.Since(start),
	}, nil
}
