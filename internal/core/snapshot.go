package core

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"os"
	"time"

	"accessquery/internal/fault"
	"accessquery/internal/features"
	"accessquery/internal/gtfs"
	"accessquery/internal/hoptree"
	"accessquery/internal/isochrone"
	"accessquery/internal/router"
	"accessquery/internal/synth"
)

// Snapshot captures the expensive offline pre-processing of an engine —
// the walking isochrones and the transit-hop forest — together with the
// generating city configuration, so a server can restart without
// recomputing them. The city itself is regenerated deterministically from
// its config.
type Snapshot struct {
	CityConfig synth.Config
	Interval   gtfs.Interval
	Tau        float64
	Hops       int
	Isochrones *isochrone.Set
	Forest     *hoptree.Forest
}

// The on-disk snapshot layout is a fixed header followed by the gob
// payload:
//
//	offset  size  field
//	0       6     magic "AQSNAP"
//	6       2     format version, big-endian uint16
//	8       8     payload length in bytes, big-endian uint64
//	16      32    SHA-256 of the payload
//	48      n     gob-encoded Snapshot
//
// The header exists so a registry asked to hot-swap a snapshot can refuse
// a truncated copy, a partial write, or a file that is not a snapshot at
// all with a precise SnapshotError instead of surfacing whatever confusing
// state a gob decoder happens to trip over — and keep the old epoch
// serving.
const (
	snapshotMagic = "AQSNAP"
	// SnapshotVersion is the current snapshot format version. Bump it when
	// the Snapshot struct changes incompatibly; LoadEngine refuses other
	// versions rather than mis-decoding them.
	SnapshotVersion uint16 = 1

	snapshotHeaderLen = 6 + 2 + 8 + sha256.Size
)

// SnapshotError reports why a snapshot file was rejected before (or while)
// decoding: wrong magic, unsupported version, truncation, or a checksum
// mismatch. The registry treats any SnapshotError as "refuse the swap,
// keep the current epoch".
type SnapshotError struct {
	Path   string
	Reason string
	Err    error // underlying error, when one exists
}

func (e *SnapshotError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("core: snapshot %s: %s: %v", e.Path, e.Reason, e.Err)
	}
	return fmt.Sprintf("core: snapshot %s: %s", e.Path, e.Reason)
}

func (e *SnapshotError) Unwrap() error { return e.Err }

// SaveSnapshot writes the engine's pre-processed structures to path in the
// versioned, checksummed snapshot format.
func (e *Engine) SaveSnapshot(path string) error {
	snap := Snapshot{
		CityConfig: e.City.Config,
		Interval:   e.Interval,
		Tau:        e.isos.Tau,
		Hops:       e.extractor.Hops,
		Isochrones: e.isos,
		Forest:     e.forest,
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&snap); err != nil {
		return fmt.Errorf("core: encoding snapshot: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())

	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	w := bufio.NewWriter(file)
	header := make([]byte, 0, snapshotHeaderLen)
	header = append(header, snapshotMagic...)
	header = binary.BigEndian.AppendUint16(header, SnapshotVersion)
	header = binary.BigEndian.AppendUint64(header, uint64(payload.Len()))
	header = append(header, sum[:]...)
	if _, err := w.Write(header); err != nil {
		file.Close()
		return fmt.Errorf("core: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		file.Close()
		return fmt.Errorf("core: %w", err)
	}
	if err := w.Flush(); err != nil {
		file.Close()
		return fmt.Errorf("core: %w", err)
	}
	return file.Close()
}

// readSnapshot reads and verifies a snapshot file: magic, version, length,
// and checksum, then the gob payload. Every rejection is a *SnapshotError
// naming the precise reason.
func readSnapshot(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, &SnapshotError{Path: path, Reason: "unreadable", Err: err}
	}
	if len(raw) < snapshotHeaderLen {
		return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("truncated: %d bytes is shorter than the %d-byte header", len(raw), snapshotHeaderLen)}
	}
	if string(raw[:6]) != snapshotMagic {
		return nil, &SnapshotError{Path: path, Reason: "not an accessquery snapshot (bad magic; re-save with a current build)"}
	}
	version := binary.BigEndian.Uint16(raw[6:8])
	if version != SnapshotVersion {
		return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("format version %d, want %d", version, SnapshotVersion)}
	}
	declared := binary.BigEndian.Uint64(raw[8:16])
	payload := raw[snapshotHeaderLen:]
	if uint64(len(payload)) != declared {
		return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("truncated: header declares %d payload bytes, file has %d", declared, len(payload))}
	}
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], raw[16:16+sha256.Size]) {
		return nil, &SnapshotError{Path: path, Reason: "checksum mismatch (corrupt or partially written)"}
	}
	var snap Snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, &SnapshotError{Path: path, Reason: "decoding payload", Err: err}
	}
	return &snap, nil
}

// LoadEngine restores an engine from a snapshot: the header is verified
// (magic, version, checksum — see SnapshotError), the city is regenerated
// from its recorded configuration (deterministic in the seed), and the
// pre-computed structures are installed without recomputation.
func LoadEngine(path string) (*Engine, error) {
	// Chaos-test injection site for snapshot load failures.
	if err := fault.Check(fault.SiteSnapshot); err != nil {
		return nil, fmt.Errorf("core: loading snapshot: %w", err)
	}
	snap, err := readSnapshot(path)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	city, err := synth.Generate(snap.CityConfig)
	if err != nil {
		return nil, fmt.Errorf("core: regenerating city: %w", err)
	}
	if snap.Forest == nil || snap.Isochrones == nil {
		return nil, &SnapshotError{Path: path, Reason: "missing forest or isochrones"}
	}
	if snap.Forest.Zones() != len(city.Zones) || len(snap.Isochrones.Isochrones) != len(city.Zones) {
		return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("does not match regenerated city (%d zones)", len(city.Zones))}
	}
	pts := zonePointsOf(city)
	extractor, err := features.NewExtractor(snap.Forest, pts, snap.Isochrones, snap.Hops)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	ix := gtfs.NewIndex(city.Feed, snap.Interval.Day)
	rt, err := router.New(city.Road, ix, city.StopNode, router.Options{})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	zoneTree, roadTree := buildSpatialIndexes(city, pts)
	return &Engine{
		City:      city,
		Interval:  snap.Interval,
		zonePts:   pts,
		isos:      snap.Isochrones,
		forest:    snap.Forest,
		extractor: extractor,
		router:    rt,
		zoneTree:  zoneTree,
		roadTree:  roadTree,
		// A snapshot stores no knob; restored engines run queries serially
		// unless the query sets its own Parallelism.
		parallelism:  1,
		PrepDuration: time.Since(start),
	}, nil
}
