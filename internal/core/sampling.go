package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"accessquery/internal/geo"
)

// SamplingStrategy selects how the labeled set L is drawn from the zones.
// The paper uses random sampling and points to active-learning strategies
// as future work; Coverage and Stratified implement the two standard
// geography-aware alternatives.
type SamplingStrategy string

// Available strategies.
const (
	// SampleRandom draws zones uniformly at random (the paper's method).
	SampleRandom SamplingStrategy = "random"
	// SampleCoverage greedily picks the zone farthest from all picked
	// zones (farthest-point traversal), maximizing geographic coverage —
	// valuable at very low budgets.
	SampleCoverage SamplingStrategy = "coverage"
	// SampleStratified divides the city into a grid and samples
	// proportionally from each occupied cell.
	SampleStratified SamplingStrategy = "stratified"
	// SampleCluster runs k-means over the zone centroids with k = n and
	// labels the zone nearest each cluster center — the active-learning
	// selection idiom (pick by distance-to-cluster-center in feature
	// space): one representative per natural group of zones instead of a
	// uniform draw.
	SampleCluster SamplingStrategy = "cluster"
)

// sampleZones returns n distinct zone indices according to the strategy,
// deterministic in seed. The result is sorted.
func sampleZones(strategy SamplingStrategy, zonePts []geo.Point, n int, seed int64) ([]int, error) {
	if n <= 0 || n > len(zonePts) {
		return nil, fmt.Errorf("core: cannot sample %d of %d zones", n, len(zonePts))
	}
	rng := rand.New(rand.NewSource(seed))
	var picked []int
	switch strategy {
	case "", SampleRandom:
		picked = rng.Perm(len(zonePts))[:n]
	case SampleCoverage:
		picked = coverageSample(zonePts, n, rng)
	case SampleStratified:
		picked = stratifiedSample(zonePts, n, rng)
	case SampleCluster:
		picked = clusterSample(zonePts, n, rng)
	default:
		return nil, fmt.Errorf("core: unknown sampling strategy %q", strategy)
	}
	sort.Ints(picked)
	return picked, nil
}

// coverageSample is a farthest-point traversal: start from a random zone,
// then repeatedly add the zone whose distance to the picked set is largest.
func coverageSample(zonePts []geo.Point, n int, rng *rand.Rand) []int {
	picked := make([]int, 0, n)
	minDist := make([]float64, len(zonePts))
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	cur := rng.Intn(len(zonePts))
	for len(picked) < n {
		picked = append(picked, cur)
		// Update distances to the picked set.
		for i := range zonePts {
			if d := geo.DistanceMeters(zonePts[i], zonePts[cur]); d < minDist[i] {
				minDist[i] = d
			}
		}
		// Next: the farthest unpicked zone.
		best, bestD := -1, -1.0
		for i := range zonePts {
			if minDist[i] > bestD && minDist[i] > 0 {
				bestD = minDist[i]
				best = i
			}
		}
		if best < 0 {
			// All remaining zones coincide with picked points; fill
			// randomly.
			for _, idx := range rng.Perm(len(zonePts)) {
				if minDist[idx] > 0 || !contains(picked, idx) {
					if !contains(picked, idx) {
						picked = append(picked, idx)
						if len(picked) == n {
							break
						}
					}
				}
			}
			break
		}
		cur = best
	}
	return picked[:n]
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// clusterSample picks one zone per k-means cluster over the zone
// centroids: centers are seeded with a farthest-point sweep (deterministic
// given rng), refined by Lloyd iterations, and each center then labels its
// nearest still-unpicked zone. Greedy assignment in center order keeps the
// representatives distinct; any shortfall is filled from a seeded
// permutation. Everything iterates in index order, so the draw is
// deterministic in the seed.
func clusterSample(zonePts []geo.Point, n int, rng *rand.Rand) []int {
	centers := make([]geo.Point, n)
	for i, z := range coverageSample(zonePts, n, rng) {
		centers[i] = zonePts[z]
	}
	assign := make([]int, len(zonePts))
	for iter := 0; iter < 25; iter++ {
		changed := false
		for i, p := range zonePts {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if d := geo.DistanceMeters(p, centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if iter > 0 && !changed {
			break
		}
		// Recompute centers as member means (lat/lon means are fine at city
		// scale); an empty cluster keeps its previous center.
		latSum := make([]float64, n)
		lonSum := make([]float64, n)
		cnt := make([]int, n)
		for i, p := range zonePts {
			c := assign[i]
			latSum[c] += p.Lat
			lonSum[c] += p.Lon
			cnt[c]++
		}
		for c := range centers {
			if cnt[c] > 0 {
				centers[c] = geo.Point{Lat: latSum[c] / float64(cnt[c]), Lon: lonSum[c] / float64(cnt[c])}
			}
		}
	}
	taken := make([]bool, len(zonePts))
	picked := make([]int, 0, n)
	for c := range centers {
		best, bestD := -1, math.Inf(1)
		for i, p := range zonePts {
			if taken[i] {
				continue
			}
			if d := geo.DistanceMeters(p, centers[c]); d < bestD {
				best, bestD = i, d
			}
		}
		if best >= 0 {
			taken[best] = true
			picked = append(picked, best)
		}
	}
	for _, idx := range rng.Perm(len(zonePts)) {
		if len(picked) == n {
			break
		}
		if !taken[idx] {
			taken[idx] = true
			picked = append(picked, idx)
		}
	}
	return picked
}

// stratifiedSample buckets zones into a sqrt(n) x sqrt(n) grid over the
// city's bounding box and draws from cells round-robin, so every part of
// the city contributes.
func stratifiedSample(zonePts []geo.Point, n int, rng *rand.Rand) []int {
	bounds := geo.NewRect(zonePts)
	side := int(math.Ceil(math.Sqrt(float64(n))))
	if side < 1 {
		side = 1
	}
	cells := make(map[int][]int)
	spanLat := bounds.MaxLat - bounds.MinLat
	spanLon := bounds.MaxLon - bounds.MinLon
	for i, p := range zonePts {
		var gx, gy int
		if spanLon > 0 {
			gx = int(float64(side-1) * (p.Lon - bounds.MinLon) / spanLon)
		}
		if spanLat > 0 {
			gy = int(float64(side-1) * (p.Lat - bounds.MinLat) / spanLat)
		}
		key := gy*side + gx
		cells[key] = append(cells[key], i)
	}
	// Shuffle within cells in sorted-key order (map iteration order must
	// not influence rng consumption), then draw one zone per cell per pass.
	var keys []int
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		list := cells[k]
		rng.Shuffle(len(list), func(i, j int) { list[i], list[j] = list[j], list[i] })
	}
	var picked []int
	for pass := 0; len(picked) < n; pass++ {
		progressed := false
		for _, k := range keys {
			if pass < len(cells[k]) {
				picked = append(picked, cells[k][pass])
				progressed = true
				if len(picked) == n {
					break
				}
			}
		}
		if !progressed {
			break
		}
	}
	return picked
}
