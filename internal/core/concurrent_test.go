package core

import (
	"sync"
	"testing"
	"time"

	"accessquery/internal/access"
	"accessquery/internal/gtfs"
	"accessquery/internal/synth"
)

// TestConcurrentDistinctQueries runs two different queries through one
// engine at the same time, the way a serving layer's worker pool does. The
// engine must be fresh: the feature extractor's lazy caches (hop counts,
// reach fractions, inbound KD-trees) are cold, so both runs populate them
// concurrently. Under -race this is the regression test for the extractor
// cache data race; without -race it still checks both runs succeed.
func TestConcurrentDistinctQueries(t *testing.T) {
	c, err := synth.Generate(synth.Scaled(synth.Coventry(), 0.1))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(c, EngineOptions{
		Interval: gtfs.Interval{Start: 7 * 3600, End: 9 * 3600, Day: time.Tuesday, Label: "AM peak"},
	})
	if err != nil {
		t.Fatal(err)
	}

	queries := []Query{
		{
			POIs:           POIsOf(c, synth.POIVaxCenter),
			Cost:           access.JourneyTime,
			Budget:         0.3,
			Model:          ModelOLS,
			SamplesPerHour: 10,
			Seed:           99,
		},
		{
			POIs:           POIsOf(c, synth.POISchool),
			Cost:           access.JourneyTime,
			Budget:         0.3,
			Model:          ModelOLS,
			SamplesPerHour: 10,
			Seed:           7,
		},
	}
	var wg sync.WaitGroup
	errs := make([]error, len(queries))
	results := make([]*Result, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q Query) {
			defer wg.Done()
			results[i], errs[i] = e.Run(q)
		}(i, q)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if results[i] == nil || len(results[i].MAC) != len(c.Zones) {
			t.Fatalf("query %d: malformed result", i)
		}
	}
}
