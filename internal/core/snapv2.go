package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"unsafe"

	"accessquery/internal/geo"
	"accessquery/internal/graph"
	"accessquery/internal/gtfs"
	"accessquery/internal/hoptree"
	"accessquery/internal/isochrone"
	"accessquery/internal/synth"
)

// Snapshot format v2 is a flat, section-table layout designed so the large
// numeric structures — isochrone node arrays, hull rings, and hop-tree leaf
// stores — land on disk exactly as they sit in memory and can be mapped
// back in with mmap instead of gob-decoded:
//
//	offset  size  field
//	0       6     magic "AQSNAP"
//	6       2     format version, big-endian uint16 (= 2)
//	8       4     section count, big-endian uint32
//	12      4     flags, big-endian uint32 (bit 0: payload is little-endian)
//	16      64×n  section table entries
//
// Each 64-byte table entry is:
//
//	offset  size  field
//	0       16    section name, NUL-padded
//	16      8     absolute file offset, big-endian uint64 (64-byte aligned)
//	24      8     section length in bytes, big-endian uint64
//	32      32    SHA-256 of the section bytes
//
// Sections start on 64-byte boundaries (zero padding between them, none
// after the last) so every numeric element inside a mapping is naturally
// aligned for its Go type. Numeric payloads are stored in native byte
// order; the flags field records which, and a reader on the other
// endianness refuses the file rather than mis-aliasing it.
const (
	snapshotV2Version uint16 = 2

	snapV2HeaderLen = 6 + 2 + 4 + 4
	snapV2EntryLen  = 16 + 8 + 8 + sha256.Size
	snapV2Align     = 64

	snapV2FlagLittleEndian = 1 << 0
)

// The section-table aliasing below depends on the exact memory layout of
// the flat value types. These constants fail to compile if a field edit
// drifts the sizes, which would silently corrupt every snapshot.
const (
	_ = uint(unsafe.Sizeof(hoptree.Leaf{}) - 32)
	_ = uint(32 - unsafe.Sizeof(hoptree.Leaf{}))
	_ = uint(unsafe.Sizeof(geo.Point{}) - 16)
	_ = uint(16 - unsafe.Sizeof(geo.Point{}))
	_ = uint(unsafe.Sizeof(graph.NodeID(0)) - 4)
	_ = uint(4 - unsafe.Sizeof(graph.NodeID(0)))
)

// nativeLittleEndian reports the byte order snapshots written by this
// process use for their numeric sections.
var nativeLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// snapMetaV2 is the small gob-encoded "meta" section: everything a v2
// snapshot stores that is not a flat numeric array.
type snapMetaV2 struct {
	CityConfig  synth.Config
	Interval    gtfs.Interval
	Tau         float64
	Hops        int
	City        string
	Epoch       uint64
	CreatedUnix int64
}

// snapSection is one named payload in the v2 layout.
type snapSection struct {
	name string
	data []byte
}

// sliceBytes aliases a slice's backing array as raw bytes. The caller must
// not let the returned bytes outlive the slice.
func sliceBytes[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	var t T
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(t)))
}

// bytesSlice reinterprets section bytes as a []T without copying. When the
// backing array is misaligned for T — possible on the heap-read fallback
// path, never for a page-aligned mapping — it copies into a fresh aligned
// allocation instead.
func bytesSlice[T any](b []byte) ([]T, error) {
	var t T
	size := int(unsafe.Sizeof(t))
	if len(b)%size != 0 {
		return nil, fmt.Errorf("%d bytes is not a whole number of %d-byte elements", len(b), size)
	}
	if len(b) == 0 {
		return nil, nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%uintptr(unsafe.Alignof(t)) != 0 {
		out := make([]T, len(b)/size)
		copy(sliceBytes(out), b)
		return out, nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), len(b)/size), nil
}

// csr flattens a ragged list-of-slices into offsets plus one flat slice.
// offsets has len(rows)+1 entries; row i spans flat[offsets[i]:offsets[i+1]].
func csr[T any](rows [][]T) (offsets []int64, flat []T) {
	offsets = make([]int64, len(rows)+1)
	total := 0
	for i, r := range rows {
		offsets[i] = int64(total)
		total += len(r)
	}
	offsets[len(rows)] = int64(total)
	flat = make([]T, 0, total)
	for _, r := range rows {
		flat = append(flat, r...)
	}
	return offsets, flat
}

// csrRow bounds-checks and slices row i out of a CSR pair. The returned
// slice has capacity clamped to its length so appends never scribble on a
// neighbouring row (or a read-only mapping).
func csrRow[T any](offsets []int64, flat []T, i int) ([]T, error) {
	a, b := offsets[i], offsets[i+1]
	if a < 0 || b < a || b > int64(len(flat)) {
		return nil, fmt.Errorf("row %d spans [%d,%d) of %d elements", i, a, b, len(flat))
	}
	return flat[a:b:b], nil
}

// buildSnapshotSectionsV2 flattens an engine's pre-processed structures
// into the ordered v2 section list.
func buildSnapshotSectionsV2(snap *Snapshot) ([]snapSection, error) {
	isos := snap.Isochrones
	forest := snap.Forest
	nz := len(isos.Isochrones)

	meta := snapMetaV2{
		CityConfig:  snap.CityConfig,
		Interval:    snap.Interval,
		Tau:         snap.Tau,
		Hops:        snap.Hops,
		City:        snap.City,
		Epoch:       snap.Epoch,
		CreatedUnix: snap.CreatedUnix,
	}
	var metaBuf bytes.Buffer
	if err := gob.NewEncoder(&metaBuf).Encode(&meta); err != nil {
		return nil, fmt.Errorf("encoding meta section: %w", err)
	}

	nodeRows := make([][]graph.NodeID, nz)
	secRows := make([][]float64, nz)
	hullRows := make([][]geo.Point, nz)
	origins := make([]geo.Point, nz)
	originNodes := make([]graph.NodeID, nz)
	for z, iso := range isos.Isochrones {
		if iso == nil {
			return nil, fmt.Errorf("zone %d has no isochrone", z)
		}
		nodeRows[z] = iso.NodeIDs
		secRows[z] = iso.NodeSeconds
		hullRows[z] = iso.Hull.Ring
		origins[z] = iso.Origin
		originNodes[z] = iso.OriginNode
	}
	nodeOff, nodeIDs := csr(nodeRows)
	_, nodeSecs := csr(secRows)
	hullOff, hullPts := csr(hullRows)

	leafRows := func(trees []*hoptree.Tree) ([][]hoptree.Leaf, error) {
		rows := make([][]hoptree.Leaf, len(trees))
		for z, t := range trees {
			if t == nil {
				return nil, fmt.Errorf("zone %d has no hop tree", z)
			}
			rows[z] = t.Leaves
		}
		return rows, nil
	}
	outRows, err := leafRows(forest.Out)
	if err != nil {
		return nil, err
	}
	inRows, err := leafRows(forest.In)
	if err != nil {
		return nil, err
	}
	outOff, outLeaves := csr(outRows)
	inOff, inLeaves := csr(inRows)

	return []snapSection{
		{"meta", metaBuf.Bytes()},
		{"iso.nodeoff", sliceBytes(nodeOff)},
		{"iso.nodeids", sliceBytes(nodeIDs)},
		{"iso.nodesecs", sliceBytes(nodeSecs)},
		{"iso.hulloff", sliceBytes(hullOff)},
		{"iso.hullpts", sliceBytes(hullPts)},
		{"iso.origins", sliceBytes(origins)},
		{"iso.orignodes", sliceBytes(originNodes)},
		{"forest.outoff", sliceBytes(outOff)},
		{"forest.outleaf", sliceBytes(outLeaves)},
		{"forest.inoff", sliceBytes(inOff)},
		{"forest.inleaf", sliceBytes(inLeaves)},
	}, nil
}

// encodeSnapshotV2 lays the sections out into a complete file image:
// header, checksummed table, and 64-byte-aligned payloads.
func encodeSnapshotV2(sections []snapSection) ([]byte, error) {
	tableEnd := snapV2HeaderLen + len(sections)*snapV2EntryLen
	offset := (tableEnd + snapV2Align - 1) &^ (snapV2Align - 1)
	offsets := make([]int, len(sections))
	for i, s := range sections {
		if len(s.name) > 16 {
			return nil, fmt.Errorf("section name %q exceeds 16 bytes", s.name)
		}
		offsets[i] = offset
		offset += len(s.data)
		if i < len(sections)-1 {
			offset = (offset + snapV2Align - 1) &^ (snapV2Align - 1)
		}
	}
	out := make([]byte, offset)
	copy(out, snapshotMagic)
	binary.BigEndian.PutUint16(out[6:8], snapshotV2Version)
	binary.BigEndian.PutUint32(out[8:12], uint32(len(sections)))
	var flags uint32
	if nativeLittleEndian {
		flags |= snapV2FlagLittleEndian
	}
	binary.BigEndian.PutUint32(out[12:16], flags)
	for i, s := range sections {
		entry := out[snapV2HeaderLen+i*snapV2EntryLen:]
		copy(entry[:16], s.name)
		binary.BigEndian.PutUint64(entry[16:24], uint64(offsets[i]))
		binary.BigEndian.PutUint64(entry[24:32], uint64(len(s.data)))
		sum := sha256.Sum256(s.data)
		copy(entry[32:64], sum[:])
		copy(out[offsets[i]:], s.data)
	}
	return out, nil
}

// parseSnapshotV2 verifies a v2 file image — header sanity, per-section
// bounds, and every section checksum — and returns the named sections as
// subslices of data (no copies). All rejections are *SnapshotError.
func parseSnapshotV2(path string, data []byte) (map[string][]byte, error) {
	if len(data) < snapV2HeaderLen {
		return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("truncated: %d bytes is shorter than the %d-byte header", len(data), snapV2HeaderLen)}
	}
	flags := binary.BigEndian.Uint32(data[12:16])
	if (flags&snapV2FlagLittleEndian != 0) != nativeLittleEndian {
		return nil, &SnapshotError{Path: path, Reason: "byte order mismatch (snapshot written on a machine with different endianness)"}
	}
	count := int(binary.BigEndian.Uint32(data[8:12]))
	tableEnd := snapV2HeaderLen + count*snapV2EntryLen
	if count <= 0 || count > 1<<10 || len(data) < tableEnd {
		return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("truncated: section table declares %d entries but only %d bytes follow the header", count, len(data)-snapV2HeaderLen)}
	}
	sections := make(map[string][]byte, count)
	for i := 0; i < count; i++ {
		entry := data[snapV2HeaderLen+i*snapV2EntryLen:]
		name := string(bytes.TrimRight(entry[:16], "\x00"))
		off := binary.BigEndian.Uint64(entry[16:24])
		length := binary.BigEndian.Uint64(entry[24:32])
		if off%snapV2Align != 0 || off < uint64(tableEnd) {
			return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("section %q at misplaced offset %d", name, off)}
		}
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("truncated: section %q wants bytes [%d,%d) but the file has %d", name, off, off+length, len(data))}
		}
		payload := data[off : off+length]
		if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], entry[32:64]) {
			return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("checksum mismatch in section %q (corrupt or partially written)", name)}
		}
		sections[name] = payload
	}
	return sections, nil
}

// snapshotFromSections rebuilds the in-memory Snapshot from verified v2
// sections. The heavy slices — node arrays, hull rings, leaf stores —
// alias the section bytes directly, so on the mmap path nothing here
// copies or decodes per-element data.
func snapshotFromSections(path string, sections map[string][]byte) (*Snapshot, error) {
	get := func(name string) ([]byte, error) {
		b, ok := sections[name]
		if !ok {
			return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("missing section %q", name)}
		}
		return b, nil
	}
	bad := func(name string, err error) error {
		if serr, ok := err.(*SnapshotError); ok {
			return serr
		}
		return &SnapshotError{Path: path, Reason: fmt.Sprintf("malformed section %q", name), Err: err}
	}
	metaRaw, err := get("meta")
	if err != nil {
		return nil, err
	}
	var meta snapMetaV2
	if err := gob.NewDecoder(bytes.NewReader(metaRaw)).Decode(&meta); err != nil {
		return nil, bad("meta", err)
	}

	var (
		nodeOff, hullOff, outOff, inOff []int64
		nodeIDs                         []graph.NodeID
		nodeSecs                        []float64
		hullPts, origins                []geo.Point
		originNodes                     []graph.NodeID
		outLeaves, inLeaves             []hoptree.Leaf
	)
	decode := func(name string, f func([]byte) error) error {
		b, err := get(name)
		if err != nil {
			return err
		}
		if err := f(b); err != nil {
			return bad(name, err)
		}
		return nil
	}
	steps := []struct {
		name string
		f    func([]byte) error
	}{
		{"iso.nodeoff", func(b []byte) (err error) { nodeOff, err = bytesSlice[int64](b); return }},
		{"iso.nodeids", func(b []byte) (err error) { nodeIDs, err = bytesSlice[graph.NodeID](b); return }},
		{"iso.nodesecs", func(b []byte) (err error) { nodeSecs, err = bytesSlice[float64](b); return }},
		{"iso.hulloff", func(b []byte) (err error) { hullOff, err = bytesSlice[int64](b); return }},
		{"iso.hullpts", func(b []byte) (err error) { hullPts, err = bytesSlice[geo.Point](b); return }},
		{"iso.origins", func(b []byte) (err error) { origins, err = bytesSlice[geo.Point](b); return }},
		{"iso.orignodes", func(b []byte) (err error) { originNodes, err = bytesSlice[graph.NodeID](b); return }},
		{"forest.outoff", func(b []byte) (err error) { outOff, err = bytesSlice[int64](b); return }},
		{"forest.outleaf", func(b []byte) (err error) { outLeaves, err = bytesSlice[hoptree.Leaf](b); return }},
		{"forest.inoff", func(b []byte) (err error) { inOff, err = bytesSlice[int64](b); return }},
		{"forest.inleaf", func(b []byte) (err error) { inLeaves, err = bytesSlice[hoptree.Leaf](b); return }},
	}
	for _, s := range steps {
		if err := decode(s.name, s.f); err != nil {
			return nil, err
		}
	}

	nz := len(origins)
	if len(nodeOff) != nz+1 || len(hullOff) != nz+1 || len(outOff) != nz+1 || len(inOff) != nz+1 || len(originNodes) != nz {
		return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("inconsistent section lengths for %d zones", nz)}
	}
	if len(nodeIDs) != len(nodeSecs) {
		return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("%d node IDs but %d node times", len(nodeIDs), len(nodeSecs))}
	}

	isos := &isochrone.Set{Tau: meta.Tau, Isochrones: make([]*isochrone.Isochrone, nz)}
	forest := &hoptree.Forest{
		Interval: meta.Interval,
		Out:      make([]*hoptree.Tree, nz),
		In:       make([]*hoptree.Tree, nz),
	}
	for z := 0; z < nz; z++ {
		ids, err := csrRow(nodeOff, nodeIDs, z)
		if err != nil {
			return nil, bad("iso.nodeoff", err)
		}
		secs, err := csrRow(nodeOff, nodeSecs, z)
		if err != nil {
			return nil, bad("iso.nodeoff", err)
		}
		hull, err := csrRow(hullOff, hullPts, z)
		if err != nil {
			return nil, bad("iso.hulloff", err)
		}
		isos.Isochrones[z] = &isochrone.Isochrone{
			Origin:      origins[z],
			OriginNode:  originNodes[z],
			Tau:         meta.Tau,
			NodeIDs:     ids,
			NodeSeconds: secs,
			Hull:        geo.Polygon{Ring: hull},
		}
		out, err := csrRow(outOff, outLeaves, z)
		if err != nil {
			return nil, bad("forest.outoff", err)
		}
		in, err := csrRow(inOff, inLeaves, z)
		if err != nil {
			return nil, bad("forest.inoff", err)
		}
		forest.Out[z] = &hoptree.Tree{Zone: z, Direction: hoptree.Outbound, Interval: meta.Interval, Leaves: out}
		forest.In[z] = &hoptree.Tree{Zone: z, Direction: hoptree.Inbound, Interval: meta.Interval, Leaves: in}
	}

	return &Snapshot{
		CityConfig:  meta.CityConfig,
		Interval:    meta.Interval,
		Tau:         meta.Tau,
		Hops:        meta.Hops,
		City:        meta.City,
		Epoch:       meta.Epoch,
		CreatedUnix: meta.CreatedUnix,
		Isochrones:  isos,
		Forest:      forest,
	}, nil
}
