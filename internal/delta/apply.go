package delta

import (
	"fmt"
	"time"

	"accessquery/internal/core"
	"accessquery/internal/geo"
	"accessquery/internal/gtfs"
	"accessquery/internal/hoptree"
	"accessquery/internal/synth"
)

// BlastRadius quantifies how much of the offline state one mutation batch
// invalidated and what the incremental rebuild cost compared to the
// from-scratch prep it replaced.
type BlastRadius struct {
	// ZonesTouched is the number of zones whose walkshed contains an
	// affected stop; TreesRebuilt counts their outbound + inbound hop
	// trees, out of TreesTotal across the city.
	ZonesTouched int `json:"zones_touched"`
	TreesRebuilt int `json:"hop_trees_rebuilt"`
	TreesTotal   int `json:"hop_trees_total"`
	// StopsAffected counts the distinct stops served by the batch's
	// mutated routes.
	StopsAffected int `json:"stops_affected"`
	// POIsChanged and ZonesReweighted count the batch's query-time-only
	// mutations (no offline rebuild at all).
	POIsChanged     int `json:"pois_changed"`
	ZonesReweighted int `json:"zones_reweighted"`
	// RouterRebuilt reports whether the timetable router was
	// reconstructed; CacheSeeded/CacheDropped count feature-cache entries
	// carried over from the old engine versus discarded as stale.
	RouterRebuilt bool `json:"router_rebuilt"`
	CacheSeeded   int  `json:"feature_cache_seeded"`
	CacheDropped  int  `json:"feature_cache_dropped"`
	// RebuildMS is the incremental apply's wall time;
	// EstFullRebuildMS is the measured from-scratch prep time of the
	// scenario's baseline engine, the cost a non-incremental path would
	// pay again.
	RebuildMS        int64 `json:"rebuild_ms"`
	EstFullRebuildMS int64 `json:"est_full_rebuild_ms"`
}

// AffectedStops returns the points of every stop served by the routes the
// batch's transit mutations touch, resolved against the baseline feed
// (which knows closed routes' stops too). This is the root of the
// dependency analysis: only hop trees of zones that can walk to one of
// these stops can change.
func AffectedStops(baseline *gtfs.Feed, batch []Mutation) []geo.Point {
	routes := make(map[gtfs.RouteID]bool)
	for _, m := range batch {
		if m.transit() {
			routes[gtfs.RouteID(m.Route)] = true
		}
	}
	if len(routes) == 0 {
		return nil
	}
	stops := make(map[gtfs.StopID]bool)
	var pts []geo.Point
	for _, t := range baseline.Trips {
		if !routes[t.RouteID] {
			continue
		}
		for _, st := range t.StopTimes {
			if stops[st.StopID] {
				continue
			}
			stops[st.StopID] = true
			if s, ok := baseline.Stop(st.StopID); ok {
				pts = append(pts, s.Point)
			}
		}
	}
	return pts
}

// Apply derives a new engine from cur by applying the full cumulative
// mutation list to the scenario's baseline city and incrementally
// rebuilding only the blast radius of the newest batch (the suffix of
// cumulative not yet reflected in cur). deltas is the batch count
// including this one and fullPrep the baseline engine's measured
// from-scratch prep, both recorded for provenance. cur is not modified;
// on error it remains the valid serving engine.
func Apply(cur *core.Engine, baseline *synth.City, cumulative, batch []Mutation, deltas, parallelism int, fullPrep time.Duration) (*core.Engine, BlastRadius, error) {
	var radius BlastRadius
	if cur == nil || baseline == nil {
		return nil, radius, fmt.Errorf("delta: nil engine or baseline city")
	}
	if len(batch) == 0 {
		return nil, radius, fmt.Errorf("delta: empty mutation batch")
	}
	start := time.Now()
	city, _, err := MutateCity(baseline, cumulative)
	if err != nil {
		return nil, radius, err
	}

	nZones := len(city.Zones)
	radius.TreesTotal = 2 * nZones
	radius.EstFullRebuildMS = fullPrep.Milliseconds()
	batchTransit := false
	for _, m := range batch {
		switch m.Kind {
		case AddPOI, RemovePOI, ReweightPOI:
			radius.POIsChanged++
		case ScaleZoneWeight:
			radius.ZonesReweighted++
		default:
			batchTransit = true
		}
	}

	spec := core.DeriveSpec{City: city}
	if batchTransit {
		stopPts := AffectedStops(baseline.Feed, batch)
		radius.StopsAffected = len(stopPts)
		zonePts := make([]geo.Point, nZones)
		for i, z := range city.Zones {
			zonePts[i] = z.Centroid
		}
		zones := hoptree.ZonesWithinWalkshed(zonePts, cur.Isochrones(), stopPts)
		builder, err := hoptree.NewBuilder(city.Feed, cur.Interval, zonePts, cur.Isochrones())
		if err != nil {
			return nil, radius, fmt.Errorf("delta: %w", err)
		}
		forest, err := hoptree.RebuildZones(builder, cur.Forest(), zones, parallelism)
		if err != nil {
			return nil, radius, fmt.Errorf("delta: %w", err)
		}
		spec.Forest = forest
		spec.RebuiltZones = zones
		radius.ZonesTouched = len(zones)
		radius.TreesRebuilt = 2 * len(zones)
	}

	eng, stats, err := cur.Derive(spec)
	if err != nil {
		return nil, radius, err
	}
	radius.RouterRebuilt = stats.RouterRebuilt
	radius.CacheSeeded = stats.CacheEntriesSeeded
	radius.CacheDropped = stats.CacheEntriesDropped
	elapsed := time.Since(start)
	radius.RebuildMS = elapsed.Milliseconds()
	eng.PrepDuration = elapsed

	nMut := len(cumulative)
	eng.Scenario = &core.ScenarioSummary{
		Deltas:       deltas,
		Mutations:    nMut,
		ZonesTouched: radius.ZonesTouched,
		TreesRebuilt: radius.TreesRebuilt,
		RebuildMS:    radius.RebuildMS,
		FullPrepMS:   radius.EstFullRebuildMS,
	}
	return eng, radius, nil
}
