// Package delta implements incremental network maintenance: typed
// mutations over a city's transit network, POIs, and zone weights, a
// dependency analysis bounding each mutation's blast radius (affected
// stops → hop trees → TODAM rows → feature-cache entries), and an apply
// step that rebuilds only that radius instead of re-running the full
// offline pipeline.
//
// The dependency chain, per mutation kind:
//
//   - close_route / reopen_route / scale_headway touch only the trips of
//     one route, and a trip of route R calls only at R's stops. Only hop
//     trees of zones whose walkshed contains one of those stops can
//     change; every other zone's trees — and the feature-cache entries
//     derived purely from unchanged trees — are shared with the current
//     engine. The timetable router is rebuilt (it indexes all trips, and
//     rebuilding it is cheap relative to tree generation).
//
//   - add_poi / remove_poi / reweight_poi / scale_zone_attractiveness
//     change nothing offline: POIs and weights enter the pipeline only at
//     query time, through the TODAM gravity spec. The derived engine
//     shares forest, extractor, and router outright, and the new epoch
//     exists purely so epoch-keyed caches invalidate.
//
// Mutations always apply cumulatively from the scenario's baseline city,
// which is what lets reopen_route restore service a prior delta closed.
package delta

import (
	"fmt"
	"math"
	"sort"

	"accessquery/internal/geo"
	"accessquery/internal/gtfs"
	"accessquery/internal/synth"
)

// Kind enumerates the supported network mutations.
type Kind string

// Mutation kinds.
const (
	// CloseRoute removes every trip of a route (a closure or strike).
	CloseRoute Kind = "close_route"
	// ReopenRoute cancels a prior closure, restoring baseline service.
	ReopenRoute Kind = "reopen_route"
	// ScaleHeadway multiplies a route's headways by Factor: 2 halves
	// service (keeps every other trip), 0.5 doubles it (inserts
	// interpolated trips).
	ScaleHeadway Kind = "scale_headway"
	// AddPOI appends a POI to a category at (Lat, Lon) with Factor as its
	// attractiveness weight (0 means 1).
	AddPOI Kind = "add_poi"
	// RemovePOI deletes the POI at index POI within Category.
	RemovePOI Kind = "remove_poi"
	// ReweightPOI multiplies the weight of the POI at index POI within
	// Category by Factor.
	ReweightPOI Kind = "reweight_poi"
	// ScaleZoneWeight multiplies one zone's attractiveness weight by
	// Factor.
	ScaleZoneWeight Kind = "scale_zone_attractiveness"
)

// Mutation is one typed network edit. Which fields matter depends on Kind;
// Validate rejects combinations that do not describe a legal edit of the
// given city.
type Mutation struct {
	Kind Kind `json:"kind"`
	// Route names the target route for transit mutations.
	Route string `json:"route,omitempty"`
	// Factor is the headway multiplier, POI weight multiplier, or zone
	// weight multiplier, depending on Kind.
	Factor float64 `json:"factor,omitempty"`
	// Category names the POI category for POI mutations.
	Category string `json:"category,omitempty"`
	// POI indexes the target POI within its category.
	POI int `json:"poi,omitempty"`
	// Lat and Lon place an added POI.
	Lat float64 `json:"lat,omitempty"`
	Lon float64 `json:"lon,omitempty"`
	// Zone indexes the target zone for scale_zone_attractiveness.
	Zone int `json:"zone,omitempty"`
}

// String renders the mutation compactly for logs and summaries.
func (m Mutation) String() string {
	switch m.Kind {
	case CloseRoute, ReopenRoute:
		return fmt.Sprintf("%s %s", m.Kind, m.Route)
	case ScaleHeadway:
		return fmt.Sprintf("%s %s x%g", m.Kind, m.Route, m.Factor)
	case AddPOI:
		return fmt.Sprintf("%s %s (%.4f, %.4f)", m.Kind, m.Category, m.Lat, m.Lon)
	case RemovePOI, ReweightPOI:
		return fmt.Sprintf("%s %s[%d]", m.Kind, m.Category, m.POI)
	case ScaleZoneWeight:
		return fmt.Sprintf("%s zone %d x%g", m.Kind, m.Zone, m.Factor)
	}
	return string(m.Kind)
}

// transit reports whether the mutation edits the timetable.
func (m Mutation) transit() bool {
	switch m.Kind {
	case CloseRoute, ReopenRoute, ScaleHeadway:
		return true
	}
	return false
}

// validate checks the mutation against the current (partially mutated)
// city state. poiCounts tracks category sizes as earlier mutations in the
// batch add and remove POIs.
func (m Mutation) validate(city *synth.City, poiCounts map[synth.POICategory]int) error {
	switch m.Kind {
	case CloseRoute, ReopenRoute:
		if _, ok := city.Feed.Route(gtfs.RouteID(m.Route)); !ok {
			return fmt.Errorf("delta: %s: unknown route %q", m.Kind, m.Route)
		}
	case ScaleHeadway:
		if _, ok := city.Feed.Route(gtfs.RouteID(m.Route)); !ok {
			return fmt.Errorf("delta: %s: unknown route %q", m.Kind, m.Route)
		}
		if m.Factor <= 0 || math.IsInf(m.Factor, 0) || math.IsNaN(m.Factor) {
			return fmt.Errorf("delta: %s %s: factor must be a positive number, got %v", m.Kind, m.Route, m.Factor)
		}
	case AddPOI:
		cat := synth.POICategory(m.Category)
		if poiCounts[cat] == 0 {
			return fmt.Errorf("delta: %s: unknown category %q", m.Kind, m.Category)
		}
		if m.Factor < 0 || math.IsInf(m.Factor, 0) || math.IsNaN(m.Factor) {
			return fmt.Errorf("delta: %s %s: weight factor must be >= 0, got %v", m.Kind, m.Category, m.Factor)
		}
	case RemovePOI:
		cat := synth.POICategory(m.Category)
		n := poiCounts[cat]
		if n == 0 {
			return fmt.Errorf("delta: %s: unknown category %q", m.Kind, m.Category)
		}
		if m.POI < 0 || m.POI >= n {
			return fmt.Errorf("delta: %s %s[%d]: index out of range (category has %d POIs)", m.Kind, m.Category, m.POI, n)
		}
		if n == 1 {
			return fmt.Errorf("delta: %s %s[%d]: cannot remove a category's last POI", m.Kind, m.Category, m.POI)
		}
	case ReweightPOI:
		cat := synth.POICategory(m.Category)
		n := poiCounts[cat]
		if n == 0 {
			return fmt.Errorf("delta: %s: unknown category %q", m.Kind, m.Category)
		}
		if m.POI < 0 || m.POI >= n {
			return fmt.Errorf("delta: %s %s[%d]: index out of range (category has %d POIs)", m.Kind, m.Category, m.POI, n)
		}
		if m.Factor <= 0 || math.IsInf(m.Factor, 0) || math.IsNaN(m.Factor) {
			return fmt.Errorf("delta: %s %s[%d]: factor must be a positive number, got %v", m.Kind, m.Category, m.POI, m.Factor)
		}
	case ScaleZoneWeight:
		if m.Zone < 0 || m.Zone >= len(city.Zones) {
			return fmt.Errorf("delta: %s: zone %d out of range (city has %d zones)", m.Kind, m.Zone, len(city.Zones))
		}
		if m.Factor < 0 || math.IsInf(m.Factor, 0) || math.IsNaN(m.Factor) {
			return fmt.Errorf("delta: %s zone %d: factor must be >= 0, got %v", m.Kind, m.Zone, m.Factor)
		}
	default:
		return fmt.Errorf("delta: unknown mutation kind %q", m.Kind)
	}
	return nil
}

// MutateCity applies mutations in order to a copy-on-write derivation of
// base, which is never modified. It returns the mutated city and whether
// the timetable changed. The same function backs both the incremental
// apply path and from-scratch rebuilds, so the two paths operate on an
// identical city by construction.
func MutateCity(base *synth.City, muts []Mutation) (*synth.City, bool, error) {
	if base == nil {
		return nil, false, fmt.Errorf("delta: nil city")
	}
	city := *base // shallow copy; every mutated member is replaced below

	// POIs and zone weights apply sequentially (indices refer to the
	// state left by earlier mutations in the list).
	poiCounts := make(map[synth.POICategory]int, len(base.POIs))
	for cat, ps := range base.POIs {
		poiCounts[cat] = len(ps)
	}
	poisCopied := false
	copyCategory := func(cat synth.POICategory) {
		if !poisCopied {
			m := make(map[synth.POICategory][]synth.POI, len(city.POIs))
			for c, ps := range city.POIs {
				m[c] = ps
			}
			city.POIs = m
			poisCopied = true
		}
		city.POIs[cat] = append([]synth.POI(nil), city.POIs[cat]...)
	}
	zoneWeightsCopied := false
	zoneWeights := func() []float64 {
		if !zoneWeightsCopied {
			zw := make([]float64, len(city.Zones))
			for i := range zw {
				zw[i] = 1
			}
			copy(zw, city.ZoneWeights)
			city.ZoneWeights = zw
			zoneWeightsCopied = true
		}
		return city.ZoneWeights
	}

	// Transit mutations compose into per-route final states and are
	// applied in one timetable pass afterwards.
	closed := make(map[gtfs.RouteID]bool)
	headway := make(map[gtfs.RouteID]float64)
	transitChanged := false

	for _, m := range muts {
		if err := m.validate(&city, poiCounts); err != nil {
			return nil, false, err
		}
		switch m.Kind {
		case CloseRoute:
			closed[gtfs.RouteID(m.Route)] = true
			transitChanged = true
		case ReopenRoute:
			closed[gtfs.RouteID(m.Route)] = false
			delete(headway, gtfs.RouteID(m.Route))
			transitChanged = true
		case ScaleHeadway:
			cur, ok := headway[gtfs.RouteID(m.Route)]
			if !ok {
				cur = 1
			}
			headway[gtfs.RouteID(m.Route)] = cur * m.Factor
			transitChanged = true
		case AddPOI:
			cat := synth.POICategory(m.Category)
			copyCategory(cat)
			w := m.Factor
			if w == 0 {
				w = 1
			}
			city.POIs[cat] = append(city.POIs[cat], synth.POI{
				ID:       len(city.POIs[cat]),
				Category: cat,
				Point:    geo.Point{Lat: m.Lat, Lon: m.Lon},
				Name:     fmt.Sprintf("scenario %s %d", cat, len(city.POIs[cat])),
				Weight:   w,
			})
			poiCounts[cat]++
		case RemovePOI:
			cat := synth.POICategory(m.Category)
			copyCategory(cat)
			ps := city.POIs[cat]
			city.POIs[cat] = append(ps[:m.POI:m.POI], ps[m.POI+1:]...)
			poiCounts[cat]--
		case ReweightPOI:
			cat := synth.POICategory(m.Category)
			copyCategory(cat)
			p := &city.POIs[cat][m.POI]
			w := p.Weight
			if w == 0 {
				w = 1
			}
			p.Weight = w * m.Factor
		case ScaleZoneWeight:
			zoneWeights()[m.Zone] *= m.Factor
		}
	}

	if transitChanged {
		feed, changed := mutateFeed(base.Feed, closed, headway)
		city.Feed = feed
		if !changed {
			transitChanged = false
		}
	}
	return &city, transitChanged, nil
}

// mutateFeed derives a timetable from base with the composed route states
// applied: closed routes lose all trips, headway-scaled routes have their
// trips deterministically thinned (factor > 1) or densified with
// interpolated insertions (factor < 1). The relative order of surviving
// baseline trips is preserved and inserted trips follow the trip they
// interpolate from, so the derived feed is deterministic.
func mutateFeed(base *gtfs.Feed, closed map[gtfs.RouteID]bool, headway map[gtfs.RouteID]float64) (*gtfs.Feed, bool) {
	// keep resolves thinning per scaled route: trips grouped by
	// (service, headsign) — one timetable column per direction — sorted
	// by first departure, keeping trip i when its decimated slot index
	// advances past trip i-1's.
	drop := make(map[gtfs.TripID]bool)
	insertAfter := make(map[gtfs.TripID][]gtfs.Trip)
	for routeID, factor := range headway {
		if factor == 1 || closed[routeID] {
			continue
		}
		groups := make(map[string][]int) // group key -> indices into base.Trips
		var order []string
		for i, t := range base.Trips {
			if t.RouteID != routeID {
				continue
			}
			key := string(t.ServiceID) + "\x00" + t.Headsign
			if _, ok := groups[key]; !ok {
				order = append(order, key)
			}
			groups[key] = append(groups[key], i)
		}
		for _, key := range order {
			idx := groups[key]
			sort.SliceStable(idx, func(a, b int) bool {
				return firstDeparture(base.Trips[idx[a]]) < firstDeparture(base.Trips[idx[b]])
			})
			if factor > 1 {
				// Keep roughly every factor-th trip: trip i survives when
				// floor(i/factor) advances.
				prev := -1
				for i, ti := range idx {
					slot := int(float64(i) / factor)
					if slot == prev {
						drop[base.Trips[ti].ID] = true
					} else {
						prev = slot
					}
				}
			} else {
				// Insert round(1/factor)-1 interpolated trips into each
				// gap, evenly time-shifted copies of the earlier trip.
				extra := int(math.Round(1/factor)) - 1
				if extra <= 0 {
					continue
				}
				for i := 0; i+1 < len(idx); i++ {
					a, b := base.Trips[idx[i]], base.Trips[idx[i+1]]
					gap := firstDeparture(b) - firstDeparture(a)
					if gap <= 0 {
						continue
					}
					for j := 1; j <= extra; j++ {
						shift := gtfs.Seconds(int(gap) * j / (extra + 1))
						if shift == 0 {
							continue
						}
						insertAfter[a.ID] = append(insertAfter[a.ID], shiftTrip(a, shift, j))
					}
				}
			}
		}
	}

	out := base.Clone()
	trips := out.Trips[:0:0]
	changed := false
	for _, t := range base.Trips {
		if closed[t.RouteID] || drop[t.ID] {
			changed = true
			continue
		}
		trips = append(trips, t)
		if ins := insertAfter[t.ID]; len(ins) > 0 {
			trips = append(trips, ins...)
			changed = true
		}
	}
	out.Trips = trips
	return out, changed
}

// firstDeparture returns the trip's initial departure time.
func firstDeparture(t gtfs.Trip) gtfs.Seconds {
	if len(t.StopTimes) == 0 {
		return 0
	}
	return t.StopTimes[0].Departure
}

// shiftTrip clones a trip with all stop times shifted by delta seconds and
// a derived, deterministic trip ID.
func shiftTrip(t gtfs.Trip, delta gtfs.Seconds, n int) gtfs.Trip {
	out := t
	out.ID = gtfs.TripID(fmt.Sprintf("%s#d%d", t.ID, n))
	out.StopTimes = make([]gtfs.StopTime, len(t.StopTimes))
	for i, st := range t.StopTimes {
		st.Arrival += delta
		st.Departure += delta
		out.StopTimes[i] = st
	}
	return out
}
