package delta

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"accessquery/internal/core"
	"accessquery/internal/gtfs"
	"accessquery/internal/synth"
)

// Fixtures: one small baseline city and engine, built once. Small enough
// to from-scratch rebuild per case, big enough that a single route's
// walkshed does not cover every zone.
var (
	baseCity   *synth.City
	baseEngine *core.Engine
)

func baseline(t *testing.T) (*synth.City, *core.Engine) {
	t.Helper()
	if baseEngine != nil {
		return baseCity, baseEngine
	}
	city, err := synth.Generate(synth.Scaled(synth.Coventry(), 0.08))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(city, core.EngineOptions{
		Interval:    gtfs.Interval{Start: 7 * 3600, End: 9 * 3600, Day: time.Tuesday},
		Parallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	baseCity, baseEngine = city, eng
	return city, eng
}

func routeID(t *testing.T, city *synth.City, i int) string {
	t.Helper()
	if len(city.Feed.Routes) <= i {
		t.Fatalf("city has only %d routes", len(city.Feed.Routes))
	}
	return string(city.Feed.Routes[i].ID)
}

// queryOn runs one fixed query and strips the fields that legitimately
// differ between two engines answering it (wall-clock timing).
func queryOn(t *testing.T, e *core.Engine, parallelism int) *core.Result {
	t.Helper()
	res, err := e.Run(core.Query{
		POIs:        core.POIsOf(e.City, "school"),
		POIWeights:  core.POIWeightsOf(e.City, "school"),
		Budget:      0.2,
		Model:       core.ModelOLS,
		Seed:        7,
		Parallelism: parallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Timing = core.Timing{}
	res.Matrix = nil
	return res
}

// TestIncrementalEquivalence is the central property of the delta
// subsystem: for a spread of mutation batches, applying incrementally on
// top of the baseline engine must produce an engine whose hop forest and
// query results deep-equal a from-scratch build of the mutated city — at
// parallelism 1 and N.
func TestIncrementalEquivalence(t *testing.T) {
	city, eng := baseline(t)
	r0, r1 := routeID(t, city, 0), routeID(t, city, 1)

	cases := []struct {
		name string
		muts []Mutation
	}{
		{"close one route", []Mutation{
			{Kind: CloseRoute, Route: r0}}},
		{"thin headways", []Mutation{
			{Kind: ScaleHeadway, Route: r1, Factor: 2}}},
		{"boost headways", []Mutation{
			{Kind: ScaleHeadway, Route: r0, Factor: 0.5}}},
		{"close then reopen is a no-op", []Mutation{
			{Kind: CloseRoute, Route: r0},
			{Kind: ReopenRoute, Route: r0}}},
		{"poi and zone reweights", []Mutation{
			{Kind: ReweightPOI, Category: "school", POI: 0, Factor: 0.25},
			{Kind: ScaleZoneWeight, Zone: 3, Factor: 1.5}}},
		{"mixed batch", []Mutation{
			{Kind: CloseRoute, Route: r1},
			{Kind: ScaleHeadway, Route: r0, Factor: 2},
			{Kind: AddPOI, Category: "school", Lat: city.Zones[0].Centroid.Lat, Lon: city.Zones[0].Centroid.Lon, Factor: 0.8}}},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/par=%d", tc.name, workers), func(t *testing.T) {
				inc, radius, err := Apply(eng, city, tc.muts, tc.muts, 1, workers, eng.PrepDuration)
				if err != nil {
					t.Fatal(err)
				}
				mutated, _, err := MutateCity(city, tc.muts)
				if err != nil {
					t.Fatal(err)
				}
				scratch, err := core.NewEngine(mutated, core.EngineOptions{
					Interval:    eng.Interval,
					Parallelism: workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(inc.Forest(), scratch.Forest()) {
					t.Fatal("incremental forest differs from from-scratch forest")
				}
				got, want := queryOn(t, inc, workers), queryOn(t, scratch, workers)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("incremental query result differs from from-scratch:\n got %+v\nwant %+v", got, want)
				}
				if radius.TreesTotal != 2*len(mutated.Zones) {
					t.Errorf("TreesTotal = %d, want %d", radius.TreesTotal, 2*len(mutated.Zones))
				}
			})
		}
	}
}

// TestClosureBlastRadiusIsPartial: closing a single route must rebuild
// some hop trees but strictly fewer than the city total — the whole point
// of dependency analysis.
func TestClosureBlastRadiusIsPartial(t *testing.T) {
	city, eng := baseline(t)
	muts := []Mutation{{Kind: CloseRoute, Route: routeID(t, city, 0)}}
	_, radius, err := Apply(eng, city, muts, muts, 1, 1, eng.PrepDuration)
	if err != nil {
		t.Fatal(err)
	}
	if radius.TreesRebuilt <= 0 || radius.TreesRebuilt >= radius.TreesTotal {
		t.Fatalf("closure rebuilt %d of %d trees, want strictly partial", radius.TreesRebuilt, radius.TreesTotal)
	}
	if radius.StopsAffected <= 0 || radius.ZonesTouched <= 0 || !radius.RouterRebuilt {
		t.Fatalf("blast radius %+v", radius)
	}
}

// TestQueryOnlyBatchSharesForest: POI/zone reweights rebuild nothing —
// the derived engine shares the forest pointer outright.
func TestQueryOnlyBatchSharesForest(t *testing.T) {
	city, eng := baseline(t)
	muts := []Mutation{{Kind: ScaleZoneWeight, Zone: 0, Factor: 2}}
	inc, radius, err := Apply(eng, city, muts, muts, 1, 1, eng.PrepDuration)
	if err != nil {
		t.Fatal(err)
	}
	if radius.TreesRebuilt != 0 || radius.ZonesTouched != 0 || radius.RouterRebuilt {
		t.Fatalf("blast radius %+v", radius)
	}
	if inc.Forest() != eng.Forest() {
		t.Fatal("query-only batch should share the baseline forest")
	}
	if radius.ZonesReweighted != 1 {
		t.Fatalf("ZonesReweighted = %d", radius.ZonesReweighted)
	}
}

// TestMutationValidation: invalid mutations are rejected without a build.
func TestMutationValidation(t *testing.T) {
	city, _ := baseline(t)
	r0 := routeID(t, city, 0)
	bad := [][]Mutation{
		{{Kind: CloseRoute, Route: "RT_NOPE"}},
		{{Kind: ReopenRoute, Route: "RT_NOPE"}},
		{{Kind: ScaleHeadway, Route: r0, Factor: 0}},
		{{Kind: ScaleHeadway, Route: r0, Factor: -1}},
		{{Kind: AddPOI, Category: "casino", Factor: 1}}, // unknown category
		{{Kind: RemovePOI, Category: "school", POI: 1 << 20}},
		{{Kind: ReweightPOI, Category: "school", POI: 0, Factor: -2}},
		{{Kind: ScaleZoneWeight, Zone: -1, Factor: 1}},
		{{Kind: ScaleZoneWeight, Zone: len(city.Zones), Factor: 1}},
		{{Kind: Kind("teleport")}},
	}
	for i, muts := range bad {
		if _, _, err := MutateCity(city, muts); err == nil {
			t.Errorf("case %d (%v): expected a validation error", i, muts)
		}
	}
}

// TestMutateCityLeavesBaselineIntact: application is copy-on-write — the
// baseline city and feed must be untouched afterwards.
func TestMutateCityLeavesBaselineIntact(t *testing.T) {
	city, _ := baseline(t)
	trips := len(city.Feed.Trips)
	schools := len(city.POIs["school"])
	muts := []Mutation{
		{Kind: CloseRoute, Route: routeID(t, city, 0)},
		{Kind: AddPOI, Category: "school", Lat: 52.4, Lon: -1.5, Factor: 1},
		{Kind: ScaleZoneWeight, Zone: 0, Factor: 3},
	}
	mutated, changed, err := MutateCity(city, muts)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("expected changed=true")
	}
	if len(city.Feed.Trips) != trips || len(city.POIs["school"]) != schools || city.ZoneWeights != nil {
		t.Fatal("MutateCity modified the baseline city")
	}
	if len(mutated.Feed.Trips) >= trips {
		t.Fatalf("closure should drop trips: %d -> %d", trips, len(mutated.Feed.Trips))
	}
	if len(mutated.POIs["school"]) != schools+1 {
		t.Fatalf("add_poi: %d -> %d", schools, len(mutated.POIs["school"]))
	}
	if mutated.ZoneWeights[0] != 3 {
		t.Fatalf("zone weight = %v", mutated.ZoneWeights[0])
	}
}
