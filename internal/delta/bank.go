package delta

// BankImpact describes what a mutation batch does to the epoch-keyed
// priced-trip bank (internal/bank) when the derived engine installs.
type BankImpact struct {
	// SeedForward is true when every journey priced on the pre-batch
	// engine is bit-identical on the derived one, so entries may be
	// carried into the new epoch's segment. That holds exactly when the
	// batch touches no transit: POI and weight mutations leave the feed,
	// hop forest, and router shared outright (see Apply), so a profile
	// search on the derived engine is the same computation on the same
	// structures. Any transit mutation invalidates the whole city — the
	// blast radius bounds hop-tree rebuilds, not journey stability,
	// because a journey from any origin can ride a mutated route in a
	// later leg, and the profile search breaks arrival-time ties by
	// relaxation order, so even walk-only journeys are not provably
	// stable. See the DESIGN.md label-bank note.
	SeedForward bool `json:"seed_forward"`
	// TransitMutations counts the batch's route/headway mutations (zero
	// when SeedForward is true).
	TransitMutations int `json:"transit_mutations"`
}

// BankImpactOf classifies a mutation batch for bank invalidation.
func BankImpactOf(batch []Mutation) BankImpact {
	imp := BankImpact{SeedForward: true}
	for _, m := range batch {
		if m.transit() {
			imp.SeedForward = false
			imp.TransitMutations++
		}
	}
	return imp
}
