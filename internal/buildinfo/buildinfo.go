// Package buildinfo identifies the running build. Version is stamped at
// link time:
//
//	go build -ldflags "-X accessquery/internal/buildinfo.Version=v1.2.3" ./cmd/...
//
// and defaults to "dev" for plain builds.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"

	"accessquery/internal/obs"
)

// Version is the build identifier, overridden via -ldflags -X.
var Version = "dev"

// Register publishes the aq_build_info gauge: constant 1 with the version
// and Go runtime as labels, the standard join-target for dashboards.
// Binaries call it from main (not init) so library importers and tests
// don't register it as a side effect.
func Register() {
	obs.Gauge(fmt.Sprintf(`aq_build_info{version=%q,goversion=%q}`,
		Version, runtime.Version())).Set(1)
	obs.Default.SetHelp("aq_build_info",
		"Constant 1, labeled with the build version and Go runtime.")
}

// Print writes the one-line -version output for binary.
func Print(w io.Writer, binary string) {
	fmt.Fprintf(w, "%s %s (%s)\n", binary, Version, runtime.Version())
}
