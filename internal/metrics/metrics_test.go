package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestMAE(t *testing.T) {
	got, err := MAE([]float64{1, 2, 3}, []float64{2, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if want := (1.0 + 0 + 2) / 3; math.Abs(got-want) > 1e-12 {
		t.Errorf("MAE = %v, want %v", got, want)
	}
	if _, err := MAE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if v, err := MAE(nil, nil); err != nil || v != 0 {
		t.Error("empty MAE should be 0")
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Sqrt(12.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", got, want)
	}
	if _, err := RMSE([]float64{1}, nil); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{10, 20, 30, 40}
	r, err := Pearson(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("r = %v, want 1", r)
	}
	// Perfect anti-correlation.
	c := []float64{4, 3, 2, 1}
	r, err = Pearson(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("r = %v, want -1", r)
	}
}

func TestPearsonInvarianceToAffineTransforms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 100)
	b := make([]float64, 100)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = a[i]*0.5 + rng.NormFloat64()*0.2
	}
	r1, err := Pearson(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Affine transform of either series leaves r unchanged.
	a2 := make([]float64, len(a))
	for i := range a {
		a2[i] = 3*a[i] + 7
	}
	r2, err := Pearson(a2, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1-r2) > 1e-9 {
		t.Errorf("affine transform changed r: %v vs %v", r1, r2)
	}
	if r1 < 0.8 {
		t.Errorf("r = %v, expected strong correlation", r1)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if r, err := Pearson([]float64{5, 5, 5}, []float64{1, 2, 3}); err != nil || r != 0 {
		t.Errorf("constant series r = %v err=%v, want 0", r, err)
	}
	if r, err := Pearson(nil, nil); err != nil || r != 0 {
		t.Errorf("empty r = %v err=%v", r, err)
	}
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestAccuracy(t *testing.T) {
	acc, err := Accuracy([]int{0, 1, 2, 3}, []int{0, 1, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if acc != 0.75 {
		t.Errorf("accuracy = %v", acc)
	}
	if _, err := Accuracy([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if acc, err := Accuracy(nil, nil); err != nil || acc != 0 {
		t.Errorf("empty accuracy = %v err=%v", acc, err)
	}
}

func TestFairnessIndexError(t *testing.T) {
	if got := FairnessIndexError(0.9, 0.85); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("FIE = %v", got)
	}
	if got := FairnessIndexError(0.8, 0.9); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("FIE = %v", got)
	}
}
