// Package metrics implements the performance measures from the paper's
// evaluation: mean absolute error, Pearson correlation between ground truth
// and predictions, classification accuracy for the four-class accessibility
// labels, and the fairness index error.
package metrics

import (
	"fmt"
	"math"
)

// MAE returns the mean absolute error between prediction and truth.
func MAE(pred, truth []float64) (float64, error) {
	if err := sameLen(pred, truth); err != nil {
		return 0, err
	}
	if len(pred) == 0 {
		return 0, nil
	}
	var sum float64
	for i := range pred {
		sum += math.Abs(pred[i] - truth[i])
	}
	return sum / float64(len(pred)), nil
}

// RMSE returns the root mean squared error between prediction and truth.
func RMSE(pred, truth []float64) (float64, error) {
	if err := sameLen(pred, truth); err != nil {
		return 0, err
	}
	if len(pred) == 0 {
		return 0, nil
	}
	var sum float64
	for i := range pred {
		d := pred[i] - truth[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred))), nil
}

// Pearson returns the Pearson correlation coefficient between two series.
// Series with zero variance yield 0 (no linear relationship measurable).
func Pearson(a, b []float64) (float64, error) {
	if err := sameLen(a, b); err != nil {
		return 0, err
	}
	n := float64(len(a))
	if n == 0 {
		return 0, nil
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da := a[i] - ma
		db := b[i] - mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0, nil
	}
	return cov / math.Sqrt(va*vb), nil
}

// Accuracy returns the fraction of positions where the class labels match.
func Accuracy(pred, truth []int) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, nil
	}
	var hits int
	for i := range pred {
		if pred[i] == truth[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(pred)), nil
}

// FairnessIndexError returns |predicted - truth| of a fairness index (the
// FIE measure).
func FairnessIndexError(pred, truth float64) float64 {
	return math.Abs(pred - truth)
}

func sameLen(a, b []float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("metrics: length mismatch %d vs %d", len(a), len(b))
	}
	return nil
}
