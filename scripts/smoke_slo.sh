#!/usr/bin/env bash
# smoke_slo.sh — end-to-end smoke test of the SLO burn-rate engine, the
# per-tenant cost accounting, and the automatic slow-query capture.
#
# Starts aqserver with two city tenants under injected SPQ faults and an
# asymmetric SLO spec: coventry gets an impossible 1ms p99 so every one of
# its queries burns latency budget, birmingham keeps a tolerant objective
# and must stay at zero burn. Asserts the /v1/slo asymmetry, fetches a
# slow job's capture from /v1/jobs/{id}/profile, checks the cost block in
# /v1/stats and the aq_slo_*/aq_cost_* metric families, and finishes by
# proving the disabled path (no -slo, no captures) adds zero allocations
# per query. Used by CI; runnable locally with no arguments.
set -euo pipefail

ADDR="127.0.0.1:18341"
BASE="http://$ADDR"
WORKDIR="$(mktemp -d)"
SERVER_PID=""
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

cd "$(dirname "$0")/.."
go build -o "$WORKDIR/aqserver" ./cmd/aqserver
go build -o "$WORKDIR/aqquery" ./cmd/aqquery

"$WORKDIR/aqquery" -city coventry -scale 0.06 -save "$WORKDIR/cov.snap" 2>/dev/null
"$WORKDIR/aqquery" -city birmingham -scale 0.05 -save "$WORKDIR/bham.snap" 2>/dev/null

# Burn tripping is disabled (-slo-burn-trip 0) so coventry's deliberately
# impossible objective keeps answering queries instead of opening the
# breaker mid-smoke; the trip path is covered by the serve package tests.
"$WORKDIR/aqserver" -cities "coventry=$WORKDIR/cov.snap,birmingham=$WORKDIR/bham.snap" \
    -addr "$ADDR" -workers 4 \
    -fault-spec "seed=42;spq:fail=0.05" \
    -slo "p99=30m,avail=99.9;coventry:p99=1ms,avail=99.9" -slo-burn-trip 0 \
    -slow-query 1ms -captures 8 -capture-dir "$WORKDIR/captures" \
    >"$WORKDIR/server.log" 2>&1 &
SERVER_PID=$!

for i in $(seq 1 60); do
    curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "FAIL: server exited during startup" >&2
        cat "$WORKDIR/server.log" >&2
        exit 1
    fi
    sleep 1
done
curl -sf "$BASE/healthz" >/dev/null || {
    echo "FAIL: server never became healthy" >&2
    cat "$WORKDIR/server.log" >&2
    exit 1
}

# 1. Drive traffic at both tenants (distinct seeds defeat the cache).
for seed in 1 2 3 4 5 6; do
    for city in coventry birmingham; do
        curl -sf -X POST -H 'Content-Type: application/json' \
            -d "{\"category\": \"school\", \"budget\": 0.2, \"model\": \"OLS\", \"seed\": $seed, \"city\": \"$city\"}" \
            "$BASE/v1/query" >/dev/null
    done
done
echo "traffic ok: 12 queries across two tenants"

# 2. /v1/slo must show the asymmetry: every coventry query misses its 1ms
# p99 (burn ~100 against the 1% latency budget); birmingham stays at zero.
curl -sf "$BASE/v1/slo" >"$WORKDIR/slo.json"
python3 - "$WORKDIR/slo.json" <<'EOF'
import json, sys
body = json.load(open(sys.argv[1]))
assert body["enabled"], "slo tracking not enabled"
tenants = {t["city"]: t for t in body["tenants"]}
assert set(tenants) == {"coventry", "birmingham"}, sorted(tenants)
cov, bham = tenants["coventry"], tenants["birmingham"]
assert cov["fast_burn"] > 10, f"coventry fast_burn = {cov['fast_burn']}, want > 10"
assert bham["fast_burn"] == 0, f"birmingham fast_burn = {bham['fast_burn']}, want 0"
w5 = next(w for w in cov["windows"] if w["window"] == "5m")
assert w5["total"] >= 6 and w5["slow"] >= 6, f"coventry 5m window = {w5}"
print(f"slo ok: coventry burns {cov['fast_burn']:.1f}, birmingham {bham['fast_burn']:.1f}")
EOF

# 3. An async coventry query over the 1ms slow-query threshold must leave
# a capture fetchable at /v1/jobs/{id}/profile.
curl -sf -X POST -H 'Content-Type: application/json' \
    -d '{"category": "school", "budget": 0.2, "model": "OLS", "seed": 99, "city": "coventry"}' \
    "$BASE/v1/query?async=1" >"$WORKDIR/accepted.json"
JOB_ID=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["job_id"])' "$WORKDIR/accepted.json")

PROFILE_OK=""
for i in $(seq 1 60); do
    if curl -sf "$BASE/v1/jobs/$JOB_ID/profile" >"$WORKDIR/profile.json" 2>/dev/null; then
        PROFILE_OK=1
        break
    fi
    sleep 1
done
[ -n "$PROFILE_OK" ] || {
    echo "FAIL: no capture appeared for job $JOB_ID" >&2
    cat "$WORKDIR/server.log" >&2
    exit 1
}
python3 - "$WORKDIR/profile.json" <<'EOF'
import json, sys
c = json.load(open(sys.argv[1]))
assert c["reason"] in ("slow_query", "deadline"), c["reason"]
assert c["city"] == "coventry", c["city"]
assert c.get("trace_id"), "capture has no trace"
assert c.get("num_goroutines", 0) > 0 and c.get("goroutines"), "capture has no goroutine dump"
cost = c.get("cost") or {}
assert cost.get("wall_seconds", 0) > 0, f"capture cost = {cost}"
print(f"capture ok: {c['id']} reason={c['reason']} "
      f"{c['num_goroutines']} goroutines, wall {cost['wall_seconds']*1000:.1f}ms")
EOF
ls "$WORKDIR"/captures/*.json >/dev/null || {
    echo "FAIL: -capture-dir mirrored no captures to disk" >&2
    exit 1
}
echo "capture dir ok"

# 4. The stats cost block must attribute jobs to both tenants, and the
# metric families must expose burn rates and cost counters.
curl -sf "$BASE/v1/stats" >"$WORKDIR/stats.json"
python3 - "$WORKDIR/stats.json" <<'EOF'
import json, sys
body = json.load(open(sys.argv[1]))
cost = {c["city"]: c for c in body.get("cost") or []}
assert {"coventry", "birmingham"} <= set(cost), sorted(cost)
for city in ("coventry", "birmingham"):
    c = cost[city]
    assert c["jobs"] >= 6, f"{city} jobs = {c['jobs']}"
    assert c["wall_seconds"] > 0 and c["stage_seconds"], f"{city} cost = {c}"
caps = body.get("captures") or {}
assert caps.get("stored", 0) >= 1, f"captures = {caps}"
print(f"cost ok: coventry {cost['coventry']['jobs']} jobs, "
      f"birmingham {cost['birmingham']['jobs']} jobs, {caps['stored']} captures stored")
EOF
curl -sf "$BASE/v1/metrics" >"$WORKDIR/metrics.txt"
for fam in aq_slo_burn_rate aq_cost_jobs_total aq_cost_cpu_micros_total aq_capture_total; do
    grep -q "^$fam" "$WORKDIR/metrics.txt" || {
        echo "FAIL: metric family $fam missing from /v1/metrics" >&2
        exit 1
    }
done
echo "metrics ok: slo/cost/capture families exposed"

# 5. The disabled path must stay free: with no accountant, no SLO engine,
# and no capture store, the per-query hooks allocate nothing.
go test -run TestDisabledObservabilityHooksZeroAlloc -count=1 ./internal/serve/ >/dev/null
go test -run TestDisabledPathZeroAlloc -count=1 ./internal/obs/account/ ./internal/obs/slo/ >/dev/null
echo "zero-alloc disabled path ok"

echo "PASS: slo/cost/capture smoke test"
