#!/usr/bin/env bash
# smoke_scenario.sh — end-to-end smoke test of incremental network deltas
# (/v1/cities/{name}/scenario).
#
# Builds aqserver and aqquery, starts a two-city preset server, then:
# closes a route via POST /v1/cities/coventry/scenario while query traffic
# is running and asserts zero failed requests, checks the scenario epoch
# bump and a strictly-partial blast radius (fewer hop trees rebuilt than
# the city total, incremental rebuild faster than the measured full prep),
# stacks a second delta through aqquery -scenario, lists both via GET and
# aqquery -scenario-status, and reverts via DELETE. Used by CI; runnable
# locally with no arguments.
set -euo pipefail

ADDR="127.0.0.1:18341"
BASE="http://$ADDR"
WORKDIR="$(mktemp -d)"
SERVER_PID=""
TRAFFIC_PID=""
trap 'kill "$SERVER_PID" "$TRAFFIC_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

cd "$(dirname "$0")/.."
go build -o "$WORKDIR/aqserver" ./cmd/aqserver
go build -o "$WORKDIR/aqquery" ./cmd/aqquery

# Preset tenants (no snapshots: scenario baselines are runtime state).
"$WORKDIR/aqserver" -cities "coventry,birmingham" -scale 0.05 \
    -addr "$ADDR" -workers 4 >"$WORKDIR/server.log" 2>&1 &
SERVER_PID=$!

for i in $(seq 1 120); do
    curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "FAIL: server exited during startup" >&2
        cat "$WORKDIR/server.log" >&2
        exit 1
    fi
    sleep 1
done
curl -sf "$BASE/healthz" >/dev/null || {
    echo "FAIL: server never became healthy" >&2
    cat "$WORKDIR/server.log" >&2
    exit 1
}

# 1. No scenario is active on a fresh tenant.
curl -sf "$BASE/v1/cities/coventry/scenario" | python3 -c '
import json, sys
st = json.load(sys.stdin)
assert st["city"] == "coventry" and not st["active"] and st["epoch"] == 1, st
print("initial scenario status ok: inactive at epoch 1")
'

# 2. Continuous coventry traffic with fresh seeds (cache misses, so runs
# race the scenario swap) while the route closure is applied.
: >"$WORKDIR/traffic.codes"
(
    i=0
    while :; do
        i=$((i + 1))
        curl -s -o /dev/null -w '%{http_code}\n' -X POST \
            -H 'Content-Type: application/json' \
            -d "{\"category\": \"school\", \"budget\": 0.2, \"model\": \"OLS\", \"seed\": $((2000 + i))}" \
            "$BASE/v1/query" >>"$WORKDIR/traffic.codes"
    done
) &
TRAFFIC_PID=$!
sleep 2

# 3. Close a route under live traffic. 201, a Location header, and a
# strictly-partial blast radius: some hop trees rebuilt, fewer than the
# city total, incrementally faster than the measured full prep.
CODE=$(curl -s -o "$WORKDIR/apply.json" -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' \
    -d '{"mutations": [{"kind": "close_route", "route": "RT_X1"}]}' \
    "$BASE/v1/cities/coventry/scenario")
[ "$CODE" = "201" ] || {
    echo "FAIL: scenario apply returned $CODE, want 201" >&2
    cat "$WORKDIR/apply.json" >&2
    exit 1
}
python3 -c '
import json, sys
body = json.load(open(sys.argv[1]))
assert body["city"]["epoch"] == 2, body
delta = body["delta"]
assert delta["id"] == 1 and delta["epoch"] == 2, delta
br = delta["blast_radius"]
assert 0 < br["hop_trees_rebuilt"] < br["hop_trees_total"], br
assert br["zones_touched"] > 0 and br["stops_affected"] > 0, br
assert br["router_rebuilt"], br
assert br["rebuild_ms"] < br["est_full_rebuild_ms"], br
zt, tr, tt = br["zones_touched"], br["hop_trees_rebuilt"], br["hop_trees_total"]
rm, fm = br["rebuild_ms"], br["est_full_rebuild_ms"]
print(f"scenario apply ok: epoch 2, {zt} zones touched, {tr}/{tt} trees rebuilt, rebuild {rm}ms vs full {fm}ms")
' "$WORKDIR/apply.json"

sleep 2
kill "$TRAFFIC_PID" 2>/dev/null || true
wait "$TRAFFIC_PID" 2>/dev/null || true
TRAFFIC_PID=""

TOTAL=$(wc -l <"$WORKDIR/traffic.codes")
BAD=$(grep -cv '^200$' "$WORKDIR/traffic.codes" || true)
[ "$TOTAL" -ge 3 ] || { echo "FAIL: only $TOTAL requests ran during the scenario window" >&2; exit 1; }
[ "$BAD" -eq 0 ] || {
    echo "FAIL: $BAD/$TOTAL requests failed across the scenario swap" >&2
    sort "$WORKDIR/traffic.codes" | uniq -c >&2
    exit 1
}
echo "scenario under load ok: $TOTAL/$TOTAL requests answered 200"

# 4. New queries serve from the scenario epoch.
curl -sf -X POST -H 'Content-Type: application/json' \
    -d '{"category": "school", "budget": 0.2, "model": "OLS", "seed": 9001}' \
    "$BASE/v1/query" | python3 -c '
import json, sys
cache = json.load(sys.stdin)["cache"]
assert cache["city"] == "coventry" and cache["epoch"] == 2, cache
print("post-delta query ok: answered by epoch 2")
'

# 5. Stack a second delta through the CLI (query-time-only POI reweight).
"$WORKDIR/aqquery" -server "$BASE" -city coventry \
    -scenario '[{"kind": "reweight_poi", "category": "school", "poi": 0, "factor": 0.5}]' \
    >"$WORKDIR/cli-apply.out"
grep -q 'now serving epoch 3' "$WORKDIR/cli-apply.out" || {
    echo "FAIL: aqquery -scenario output missing epoch bump" >&2
    cat "$WORKDIR/cli-apply.out" >&2
    exit 1
}
echo "aqquery -scenario ok: $(head -1 "$WORKDIR/cli-apply.out")"

# 6. GET lists both deltas; the CLI status echoes the blast radii.
curl -sf "$BASE/v1/cities/coventry/scenario" | python3 -c '
import json, sys
st = json.load(sys.stdin)
assert st["active"] and st["baseline_epoch"] == 1 and st["epoch"] == 3, st
assert [d["id"] for d in st["deltas"]] == [1, 2], st
print("scenario status ok: 2 deltas over baseline epoch 1")
'
"$WORKDIR/aqquery" -server "$BASE" -city coventry -scenario-status >"$WORKDIR/status.out"
grep -q 'blast radius' "$WORKDIR/status.out" || {
    echo "FAIL: aqquery -scenario-status missing blast radius summary" >&2
    cat "$WORKDIR/status.out" >&2
    exit 1
}
sed 's/^/  /' "$WORKDIR/status.out"

# 7. An invalid mutation is refused with 422 and the epoch holds.
CODE=$(curl -s -o "$WORKDIR/bad.json" -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' \
    -d '{"mutations": [{"kind": "close_route", "route": "RT_NOPE"}]}' \
    "$BASE/v1/cities/coventry/scenario")
[ "$CODE" = "422" ] || { echo "FAIL: bad mutation returned $CODE, want 422" >&2; exit 1; }
python3 -c '
import json, sys
err = json.load(open(sys.argv[1]))["error"]
assert err["code"] == "bad_mutation" and not err["retryable"], err
print("bad mutation ok: 422 bad_mutation")
' "$WORKDIR/bad.json"

# 8. DELETE reverts to the pinned baseline as a fresh epoch.
curl -sf -X DELETE "$BASE/v1/cities/coventry/scenario" | python3 -c '
import json, sys
body = json.load(sys.stdin)
assert body["city"]["epoch"] == 4 and body["retired_epoch"] == 3, body
print("scenario revert ok: baseline serving as epoch 4")
'
curl -sf "$BASE/v1/cities/coventry/scenario" | python3 -c '
import json, sys
st = json.load(sys.stdin)
assert not st["active"] and not st.get("deltas"), st
'

# 9. Delta metrics are exposed.
curl -sf "$BASE/v1/metrics" >"$WORKDIR/metrics.out"
for m in aq_delta_batches_total aq_delta_trees_rebuilt_total aq_delta_trees_spared_total aq_delta_reverts_total; do
    grep -q "$m" "$WORKDIR/metrics.out" || {
        echo "FAIL: metrics missing $m" >&2
        exit 1
    }
done
echo "delta metrics ok"

echo "PASS: scenario delta smoke test"
