#!/usr/bin/env bash
# chaos.sh — robustness smoke test of aqserver under deterministic fault
# injection.
#
# Starts the server with -fault-spec "seed=42;spq:fail=<rate>" on a tiny
# synthetic city, fires N consecutive /v1/query calls with distinct seeds
# (so each one runs the engine rather than the cache), and asserts:
#
#   1. zero 5xx responses — SPQ faults degrade answers, they never crash
#      the serving path;
#   2. every 200 body is valid JSON carrying the query summary, and any
#      degraded answer says so in its `degraded` block;
#   3. the fault accounting identity holds on /v1/metrics:
#      spq retries + spq abandons == injected spq faults.
#
# Usage: scripts/chaos.sh [fail-rate] [num-queries]   (defaults 0.05, 100)
# Used by CI; runnable locally with no arguments.
set -euo pipefail

RATE="${1:-0.05}"
N="${2:-100}"
ADDR="127.0.0.1:18331"
BASE="http://$ADDR"
WORKDIR="$(mktemp -d)"
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

cd "$(dirname "$0")/.."
go build -o "$WORKDIR/aqserver" ./cmd/aqserver

"$WORKDIR/aqserver" -city coventry -scale 0.06 -addr "$ADDR" \
    -fault-spec "seed=42;spq:fail=$RATE" -workers 2 \
    >"$WORKDIR/server.log" 2>&1 &
SERVER_PID=$!

for i in $(seq 1 120); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "FAIL: server exited during startup" >&2
        cat "$WORKDIR/server.log" >&2
        exit 1
    fi
    sleep 1
done
curl -sf "$BASE/healthz" >/dev/null || {
    echo "FAIL: server never became healthy" >&2
    cat "$WORKDIR/server.log" >&2
    exit 1
}

# Fire N consecutive queries, each with a fresh seed so the cache and the
# in-flight dedup cannot mask engine behaviour. Record every status code
# and keep every body for the validation pass below.
mkdir "$WORKDIR/bodies"
: >"$WORKDIR/codes"
for i in $(seq 1 "$N"); do
    CODE=$(curl -s -o "$WORKDIR/bodies/$i.json" -w '%{http_code}' \
        -X POST -H 'Content-Type: application/json' \
        -d "{\"category\": \"school\", \"budget\": 0.1, \"model\": \"OLS\", \"seed\": $i}" \
        "$BASE/v1/query")
    echo "$CODE" >>"$WORKDIR/codes"
done

python3 - "$WORKDIR" "$N" <<'EOF'
import json, sys, pathlib
workdir, n = pathlib.Path(sys.argv[1]), int(sys.argv[2])
codes = workdir.joinpath("codes").read_text().split()
assert len(codes) == n, f"expected {n} responses, got {len(codes)}"
fives = [c for c in codes if c.startswith("5")]
assert not fives, f"{len(fives)} 5xx responses under fault injection: {fives}"
ok = degraded = 0
for i, code in enumerate(codes, 1):
    body = json.load(open(workdir / "bodies" / f"{i}.json"))
    if code == "200":
        ok += 1
        assert "fairness" in body and "spqs" in body and "elapsed_ms" in body, \
            f"query {i}: 200 body missing summary fields: {sorted(body)}"
        if body.get("degraded"):
            degraded += 1
            assert body["degraded"].get("rungs"), f"query {i}: empty degraded block"
    else:
        err = body.get("error") or {}
        assert err.get("code") and err.get("retryable") is True, \
            f"query {i}: non-200 ({code}) must be a retryable envelope: {body}"
print(f"queries ok: {ok}/{n} answered, {degraded} degraded, zero 5xx")
EOF

# Accounting: every injected SPQ fault must be visible as either a retry
# or an abandon on the engine's counters.
curl -sf "$BASE/v1/metrics" >"$WORKDIR/metrics.txt"
python3 - "$WORKDIR/metrics.txt" <<'EOF'
import sys
injected = retries = abandoned = degraded = 0.0
for line in open(sys.argv[1]):
    if line.startswith("#"):
        continue
    parts = line.split()
    if len(parts) != 2:
        continue
    name, value = parts[0], float(parts[1])
    if name.startswith('aq_fault_injected_total{site="spq"'):
        injected += value
    elif name == "aq_engine_spq_retries_total":
        retries += value
    elif name == "aq_engine_spq_abandoned_total":
        abandoned += value
    elif name.startswith("aq_engine_degraded_total"):
        degraded += value
assert injected > 0, "no spq faults injected — is -fault-spec wired?"
assert retries + abandoned == injected, \
    f"accounting broken: {retries} retries + {abandoned} abandons != {injected} injected"
print(f"accounting ok: {injected:.0f} injected = {retries:.0f} retried + "
      f"{abandoned:.0f} abandoned; {degraded:.0f} degradation rungs fired")
EOF

echo "PASS: chaos smoke test (rate $RATE, $N queries)"
