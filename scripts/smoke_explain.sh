#!/usr/bin/env bash
# smoke_explain.sh — end-to-end smoke test of the tracing/explain surface.
#
# Builds aqserver, starts it on a tiny synthetic city, runs one query with
# ?explain=1, and asserts the execution report and the async job's span
# tree are populated. Exercises the same path an operator debugging a
# slow query would take. Used by CI; runnable locally with no arguments.
set -euo pipefail

ADDR="127.0.0.1:18321"
DEBUG_ADDR="127.0.0.1:18322"
BASE="http://$ADDR"
WORKDIR="$(mktemp -d)"
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

cd "$(dirname "$0")/.."
go build -o "$WORKDIR/aqserver" ./cmd/aqserver

"$WORKDIR/aqserver" -city coventry -scale 0.08 -addr "$ADDR" \
    -debug-addr "$DEBUG_ADDR" -slow-query 1ms >"$WORKDIR/server.log" 2>&1 &
SERVER_PID=$!

# Wait for readiness: pre-processing the tiny city takes a few seconds.
for i in $(seq 1 120); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "FAIL: server exited during startup" >&2
        cat "$WORKDIR/server.log" >&2
        exit 1
    fi
    sleep 1
done
curl -sf "$BASE/healthz" >/dev/null || {
    echo "FAIL: server never became healthy" >&2
    cat "$WORKDIR/server.log" >&2
    exit 1
}

QUERY='{"category": "school", "budget": 0.2, "model": "OLS", "seed": 11}'

# 1. Sync query with ?explain=1 must return a populated execution report.
curl -sf -X POST -H 'Content-Type: application/json' -d "$QUERY" \
    "$BASE/v1/query?explain=1" >"$WORKDIR/explain.json"
python3 - "$WORKDIR/explain.json" <<'EOF'
import json, sys
resp = json.load(open(sys.argv[1]))
ex = resp.get("explain")
assert ex, "no explain object in ?explain=1 response"
assert ex.get("trace_id"), "explain has no trace_id"
assert ex.get("spqs", 0) > 0, f"spqs = {ex.get('spqs')}"
assert ex.get("labeled_zones", 0) > 0, "no labeled_zones"
assert ex.get("matrix_full_trips", 0) > ex.get("matrix_trips", 0) > 0, "TODAM sizes missing"
stages = {s["name"] for s in ex.get("stages", [])}
want = {"matrix", "sampling", "labeling", "features", "training"}
assert want <= stages, f"stages missing {want - stages}"
assert ex.get("trace", {}).get("spans"), "explain carries no span tree"
print(f"explain ok: {len(stages)} stages, {ex['spqs']} SPQs, "
      f"{ex.get('matrix_reduction_pct', 0):.1f}% TODAM reduction")
EOF

# 2. Async job: the trace endpoint must serve a non-empty span tree.
curl -sf -X POST -H 'Content-Type: application/json' \
    -d '{"category": "school", "budget": 0.2, "model": "OLS", "seed": 12}' \
    "$BASE/v1/query?async=1" >"$WORKDIR/accepted.json"
JOB_URL="$BASE$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["status_url"])' "$WORKDIR/accepted.json")"

for i in $(seq 1 120); do
    STATE=$(curl -sf "$JOB_URL" | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
    [ "$STATE" = "done" ] && break
    if [ "$STATE" = "failed" ]; then
        echo "FAIL: async job failed" >&2
        exit 1
    fi
    sleep 1
done

curl -sf "$JOB_URL/trace" >"$WORKDIR/trace.json"
python3 - "$WORKDIR/trace.json" <<'EOF'
import json, sys
tr = json.load(open(sys.argv[1]))
assert tr.get("trace_id"), "trace has no trace_id"
spans = tr.get("spans") or []
assert spans, "trace endpoint returned an empty span tree"
names = set()
def walk(nodes):
    for n in nodes:
        names.add(n["name"])
        walk(n.get("children") or [])
walk(spans)
want = {"job", "query", "matrix", "sampling", "labeling", "features", "training"}
assert want <= names, f"span tree missing {want - names}"
print(f"trace ok: {len(names)} distinct spans, root {spans[0]['name']!r}")
EOF

# 3. The debug listener's flight recorder must have retained the traces.
# The body is {retained, evicted, dropped_spans, traces}, so span loss is
# visible in the header rather than silent.
curl -sf "http://$DEBUG_ADDR/debug/traces" >"$WORKDIR/debug_traces.json"
python3 - "$WORKDIR/debug_traces.json" <<'EOF'
import json, sys
body = json.load(open(sys.argv[1]))
traces = body.get("traces") or []
assert traces, "/debug/traces is empty after two completed runs"
assert body.get("retained") == len(traces), "header retained count disagrees with the listing"
assert "dropped_spans" in body and "evicted" in body, "loss counters missing from header"
print(f"flight recorder ok: {len(traces)} trace(s) retained, "
      f"{body['evicted']} evicted, {body['dropped_spans']} spans dropped")
EOF

# 4. The 1ms slow-query threshold must have produced a structured log line.
grep -q '"msg":"slow query"' "$WORKDIR/server.log" || {
    echo "FAIL: no slow-query log line in server output" >&2
    cat "$WORKDIR/server.log" >&2
    exit 1
}
echo "slow-query log ok"
echo "PASS: explain/trace smoke test"
