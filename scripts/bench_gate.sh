#!/usr/bin/env sh
# bench_gate.sh — fail CI when the engine benchmarks regress against the
# committed baseline.
#
# Compares two BENCH_<date>.json files (from scripts/bench.sh) on the
# NewEngine and EngineRun families: for every shared benchmark name the
# fastest sample on each side is taken (minimum ns/op — the most
# noise-robust statistic for a gate), the per-name ratios are combined
# into a geometric mean, and a geomean above the limit fails the run.
# BenchmarkLoadEngine stays out of the gate: it is a format comparison,
# not a regression surface, and its own >=10x assertion lives in
# TestSnapshotV2ColdStartSpeedup.
#
# Usage:
#   scripts/bench_gate.sh baseline.json current.json [max_ratio]
#
# max_ratio defaults to 1.10: a >10% geomean slowdown fails.
set -eu

if [ $# -lt 2 ]; then
	echo "usage: $0 baseline.json current.json [max_ratio]" >&2
	exit 2
fi
baseline=$1
current=$2
max=${3:-1.10}

awk -v max="$max" -v baseline="$baseline" -v current="$current" '
FNR == 1 { fileno++ }
/"name": "(BenchmarkNewEngine|BenchmarkEngineRun)/ {
	if (!match($0, /"name": "[^"]*"/)) next
	name = substr($0, RSTART + 9, RLENGTH - 10)
	if (!match($0, /"ns_per_op": [0-9.e+]+/)) next
	ns = substr($0, RSTART + 13, RLENGTH - 13) + 0
	if (fileno == 1) {
		if (!(name in base) || ns < base[name]) base[name] = ns
	} else {
		if (!(name in cur) || ns < cur[name]) cur[name] = ns
	}
}
END {
	n = 0
	logsum = 0
	for (name in cur) {
		if (!(name in base)) {
			printf "%-45s (new benchmark, not gated)\n", name
			continue
		}
		r = cur[name] / base[name]
		printf "%-45s base %11.0f ns/op  cur %11.0f ns/op  ratio %.3f\n", name, base[name], cur[name], r
		logsum += log(r)
		n++
	}
	if (n == 0) {
		printf "bench_gate: no comparable benchmarks between %s and %s (renamed?)\n", baseline, current
		exit 1
	}
	g = exp(logsum / n)
	printf "geomean ratio over %d benchmarks: %.3f (limit %.2f)\n", n, g, max
	if (g > max + 0) {
		printf "bench_gate: FAIL — current run is %.1f%% slower than the committed baseline\n", (g - 1) * 100
		exit 1
	}
	print "bench_gate: OK"
}
' "$baseline" "$current"
