#!/usr/bin/env bash
# smoke_swap.sh — end-to-end smoke test of multi-city serving and
# zero-downtime snapshot hot-swap.
#
# Builds the three binaries, prepares snapshots offline with aqquery -save,
# starts aqserver with two city tenants, then: routes queries per city
# (aqquery -server round-trips the city field), hot-swaps coventry's
# engine via POST /v1/cities/{name}/swap while traffic is running and
# asserts zero failed requests, checks the epoch bump and the epoch-stale
# cache hit, reloads via SIGHUP, and finishes with an aqbench serve
# benchmark. Used by CI; runnable locally with no arguments.
set -euo pipefail

ADDR="127.0.0.1:18331"
BASE="http://$ADDR"
WORKDIR="$(mktemp -d)"
SERVER_PID=""
TRAFFIC_PID=""
trap 'kill "$SERVER_PID" "$TRAFFIC_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

cd "$(dirname "$0")/.."
go build -o "$WORKDIR/aqserver" ./cmd/aqserver
go build -o "$WORKDIR/aqquery" ./cmd/aqquery
go build -o "$WORKDIR/aqbench" ./cmd/aqbench

# Offline pre-processing: two coventry generations (the second is the swap
# target) and one birmingham, all tiny.
"$WORKDIR/aqquery" -city coventry -scale 0.06 -save "$WORKDIR/covA.snap" 2>/dev/null
"$WORKDIR/aqquery" -city coventry -scale 0.07 -save "$WORKDIR/covB.snap" 2>/dev/null
"$WORKDIR/aqquery" -city birmingham -scale 0.05 -save "$WORKDIR/bham.snap" 2>/dev/null

"$WORKDIR/aqserver" -cities "coventry=$WORKDIR/covA.snap,birmingham=$WORKDIR/bham.snap" \
    -addr "$ADDR" -workers 4 >"$WORKDIR/server.log" 2>&1 &
SERVER_PID=$!

for i in $(seq 1 60); do
    curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "FAIL: server exited during startup" >&2
        cat "$WORKDIR/server.log" >&2
        exit 1
    fi
    sleep 1
done
curl -sf "$BASE/healthz" >/dev/null || {
    echo "FAIL: server never became healthy" >&2
    cat "$WORKDIR/server.log" >&2
    exit 1
}

# 1. Both tenants are listed at epoch 1 with coventry as the default.
curl -sf "$BASE/v1/cities" | python3 -c '
import json, sys
body = json.load(sys.stdin)
assert body["default"] == "coventry", body
cities = {c["name"]: c for c in body["cities"]}
assert set(cities) == {"coventry", "birmingham"}, cities
assert all(c["epoch"] == 1 for c in cities.values()), cities
print(f"cities ok: {sorted(cities)} at epoch 1")
'

# 2. aqquery -server round-trips the city field: the birmingham tenant
# answers and the CSV comes back with data rows.
"$WORKDIR/aqquery" -server "$BASE" -city birmingham -category school \
    -budget 0.2 -model OLS >"$WORKDIR/bham.csv" 2>"$WORKDIR/bham.summary"
grep -q 'city birmingham epoch 1' "$WORKDIR/bham.summary" || {
    echo "FAIL: remote summary lacks birmingham provenance" >&2
    cat "$WORKDIR/bham.summary" >&2
    exit 1
}
[ "$(wc -l <"$WORKDIR/bham.csv")" -gt 1 ] || {
    echo "FAIL: remote CSV has no data rows" >&2
    exit 1
}
echo "aqquery -server ok: $(($(wc -l <"$WORKDIR/bham.csv") - 1)) zones from birmingham"

# 3. An unknown city is a 404 with the stable error code.
CODE=$(curl -s -o "$WORKDIR/unknown.json" -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' \
    -d '{"category": "school", "city": "atlantis"}' "$BASE/v1/query")
[ "$CODE" = "404" ] || { echo "FAIL: unknown city returned $CODE, want 404" >&2; exit 1; }
python3 -c '
import json, sys
err = json.load(open(sys.argv[1]))["error"]
assert err["code"] == "unknown_city", err
print("unknown city ok: 404 unknown_city")
' "$WORKDIR/unknown.json"

# 4. Seed a coventry cache entry on epoch 1; it must come back epoch-stale
# after the swap.
curl -sf -X POST -H 'Content-Type: application/json' \
    -d '{"category": "school", "budget": 0.2, "model": "OLS", "seed": 500}' \
    "$BASE/v1/query" | python3 -c '
import json, sys
cache = json.load(sys.stdin)["cache"]
assert cache == {"hit": False, "city": "coventry", "epoch": 1}, cache
'

# 5. Hot-swap under load: continuous coventry traffic with fresh seeds
# (cache misses, so runs race the swap) while the engine is replaced.
: >"$WORKDIR/traffic.codes"
(
    i=0
    while :; do
        i=$((i + 1))
        curl -s -o /dev/null -w '%{http_code}\n' -X POST \
            -H 'Content-Type: application/json' \
            -d "{\"category\": \"school\", \"budget\": 0.2, \"model\": \"OLS\", \"seed\": $((1000 + i))}" \
            "$BASE/v1/query" >>"$WORKDIR/traffic.codes"
    done
) &
TRAFFIC_PID=$!
sleep 2

curl -sf -X POST -H 'Content-Type: application/json' \
    -d "{\"snapshot\": \"$WORKDIR/covB.snap\"}" \
    "$BASE/v1/cities/coventry/swap" >"$WORKDIR/swap.json"
python3 -c '
import json, sys
body = json.load(open(sys.argv[1]))
assert body["city"]["epoch"] == 2, body
assert body["retired_epoch"] == 1, body
print("swap ok: epoch 1 -> 2")
' "$WORKDIR/swap.json"

sleep 2
kill "$TRAFFIC_PID" 2>/dev/null || true
wait "$TRAFFIC_PID" 2>/dev/null || true
TRAFFIC_PID=""

TOTAL=$(wc -l <"$WORKDIR/traffic.codes")
BAD=$(grep -cv '^200$' "$WORKDIR/traffic.codes" || true)
[ "$TOTAL" -ge 3 ] || { echo "FAIL: only $TOTAL requests ran during the swap window" >&2; exit 1; }
[ "$BAD" -eq 0 ] || {
    echo "FAIL: $BAD/$TOTAL requests failed across the hot-swap" >&2
    sort "$WORKDIR/traffic.codes" | uniq -c >&2
    exit 1
}
echo "swap under load ok: $TOTAL/$TOTAL requests answered 200"

# 6. The epoch-1 cache entry survives as an honest, flagged hit.
curl -sf -X POST -H 'Content-Type: application/json' \
    -d '{"category": "school", "budget": 0.2, "model": "OLS", "seed": 500}' \
    "$BASE/v1/query" | python3 -c '
import json, sys
cache = json.load(sys.stdin)["cache"]
assert cache["hit"] and cache["epoch"] == 1 and cache["epoch_stale"], cache
print("epoch-stale cache hit ok")
'

# 7. SIGHUP reloads tenants whose snapshot changed on disk: overwrite
# coventry's current source and expect epoch 3; birmingham stays at 1.
cp "$WORKDIR/covA.snap" "$WORKDIR/covB.snap"
kill -HUP "$SERVER_PID"
for i in $(seq 1 30); do
    EPOCH=$(curl -sf "$BASE/v1/cities" | python3 -c '
import json, sys
print({c["name"]: c["epoch"] for c in json.load(sys.stdin)["cities"]}["coventry"])
')
    [ "$EPOCH" = "3" ] && break
    sleep 1
done
[ "$EPOCH" = "3" ] || { echo "FAIL: coventry epoch $EPOCH after SIGHUP, want 3" >&2; exit 1; }
curl -sf "$BASE/v1/cities/birmingham" | python3 -c '
import json, sys
assert json.load(sys.stdin)["epoch"] == 1
print("sighup reload ok: coventry at epoch 3, birmingham untouched")
'

# 8. The serve benchmark runs clean against the swapped tenant.
"$WORKDIR/aqbench" -exp serve -server "$BASE" -city coventry \
    -n 20 -concurrency 4 -unique 5 >"$WORKDIR/bench.out"
grep -q 'cache hits' "$WORKDIR/bench.out" || {
    echo "FAIL: serve benchmark output missing cache stats" >&2
    cat "$WORKDIR/bench.out" >&2
    exit 1
}
sed 's/^/  /' "$WORKDIR/bench.out"

echo "PASS: multi-city swap smoke test"
