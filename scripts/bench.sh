#!/usr/bin/env sh
# bench.sh — run the engine prep/query benchmarks and archive the results.
#
# Emits two artifacts in the chosen output directory (default .):
#   BENCH_<date>.txt   raw `go test -bench` output, benchstat-compatible:
#                      compare two runs with `benchstat old.txt new.txt`
#   BENCH_<date>.json  the same measurements parsed into JSON for dashboards
#
# Usage:
#   scripts/bench.sh [-o outdir] [-t benchtime] [-c count]
#
# -c runs each benchmark N times (go test -count), default 5: benchstat
# needs repeated samples to report variance, and a single-iteration run
# is statistically meaningless as a regression baseline.
#
# Environment:
#   BENCH_DATE   override the date stamp (useful for reproducible CI names)
#   BENCHTIME    default benchtime (flag -t overrides)
#   BENCHCOUNT   default count (flag -c overrides)
set -eu

outdir=.
benchtime=${BENCHTIME:-1s}
count=${BENCHCOUNT:-5}
while getopts o:t:c: opt; do
	case $opt in
	o) outdir=$OPTARG ;;
	t) benchtime=$OPTARG ;;
	c) count=$OPTARG ;;
	*) exit 2 ;;
	esac
done

date=${BENCH_DATE:-$(date -u +%Y%m%d)}
txt="$outdir/BENCH_${date}.txt"
json="$outdir/BENCH_${date}.json"
mkdir -p "$outdir"

go test -run '^$' -bench 'BenchmarkNewEngine|BenchmarkEngineRun|BenchmarkLoadEngine' \
	-benchmem -benchtime "$benchtime" -count "$count" ./internal/core/ | tee "$txt"

# Parse the standard benchmark lines:
#   BenchmarkName/sub-8   	 iterations	 ns/op	 B/op	 allocs/op
awk -v date="$date" '
/^goos:/ { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
	name = $1; iters = $2; ns = $3
	bytes = ""; allocs = ""
	for (i = 4; i <= NF; i++) {
		if ($(i) == "B/op") bytes = $(i - 1)
		if ($(i) == "allocs/op") allocs = $(i - 1)
	}
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
	if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
	if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
	printf "}"
}
END {
	printf "\n  ],\n"
	printf "  \"date\": \"%s\",\n", date
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"cpu\": \"%s\"\n}\n", cpu
}
BEGIN { printf "{\n  \"benchmarks\": [\n" }
' "$txt" >"$json"

echo "wrote $txt and $json"
