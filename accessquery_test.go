package accessquery

import (
	"testing"
)

// TestPublicAPIEndToEnd exercises the whole public surface the way the
// README quickstart does.
func TestPublicAPIEndToEnd(t *testing.T) {
	city, err := GenerateCity(ScaledConfig(CoventryConfig(), 0.08))
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(city, EngineOptions{Interval: WeekdayAMPeak()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(Query{
		POIs:   POIsOf(city, POISchool),
		Cost:   CostJourneyTime,
		Budget: 0.15,
		Model:  ModelMLP,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fairness <= 0 || res.Fairness > 1 {
		t.Errorf("fairness = %f", res.Fairness)
	}
	var valid int
	for i := range res.Valid {
		if res.Valid[i] {
			valid++
		}
	}
	if valid < len(city.Zones)/2 {
		t.Errorf("only %d of %d zones valid", valid, len(city.Zones))
	}
}

func TestPresetsMatchPaper(t *testing.T) {
	b := BirminghamConfig()
	c := CoventryConfig()
	if b.Zones != 3217 {
		t.Errorf("Birmingham zones = %d, paper says 3217", b.Zones)
	}
	if c.Zones != 1014 {
		t.Errorf("Coventry zones = %d, paper says 1014", c.Zones)
	}
	wantB := map[POICategory]int{POISchool: 874, POIHospital: 56, POIVaxCenter: 82, POIJobCenter: 20}
	for cat, n := range wantB {
		if b.POICounts[cat] != n {
			t.Errorf("Birmingham %s = %d, want %d", cat, b.POICounts[cat], n)
		}
	}
	wantC := map[POICategory]int{POISchool: 230, POIHospital: 6, POIVaxCenter: 22, POIJobCenter: 2}
	for cat, n := range wantC {
		if c.POICounts[cat] != n {
			t.Errorf("Coventry %s = %d, want %d", cat, c.POICounts[cat], n)
		}
	}
}

func TestIntervals(t *testing.T) {
	am := WeekdayAMPeak()
	if am.Start != 7*3600 || am.End != 9*3600 {
		t.Errorf("AM peak = %v", am)
	}
	pm := WeekdayPMPeak()
	if pm.Start != 16*3600 || pm.End != 18*3600 {
		t.Errorf("PM peak = %v", pm)
	}
	if !am.Contains(8 * 3600) {
		t.Error("8am should be in the AM peak")
	}
}

func TestFairnessHelpers(t *testing.T) {
	if JainIndex([]float64{2, 2, 2}) != 1 {
		t.Error("equal values should be perfectly fair")
	}
	got, err := WeightedJainIndex([]float64{1, 2}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 || got > 1 {
		t.Errorf("weighted Jain = %f", got)
	}
}

func TestDefaultParams(t *testing.T) {
	cp := DefaultCostParams()
	if cp.LambdaInVehicle != 1.0 || cp.LambdaWait <= cp.LambdaInVehicle {
		t.Errorf("cost params wrong: %+v", cp)
	}
	att := DefaultAttractiveness()
	if att.Cutoff <= 0 || att.Cutoff >= 1 {
		t.Errorf("attractiveness cutoff = %f", att.Cutoff)
	}
}

func TestAllModelsAndCategoriesExported(t *testing.T) {
	if len(AllModels) != 5 {
		t.Errorf("AllModels has %d entries", len(AllModels))
	}
	if len(AllPOICategories) != 4 {
		t.Errorf("AllPOICategories has %d entries", len(AllPOICategories))
	}
}
