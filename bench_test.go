package accessquery

// Benchmarks regenerating each of the paper's tables and figures. Each
// benchmark runs the corresponding experiment end-to-end on reduced-scale
// cities (Table I runs at full paper scale — it needs no shortest-path
// queries). Run everything with:
//
//	go test -bench=. -benchmem
//
// and see cmd/aqbench for the full printed reproductions.

import (
	"io"
	"testing"

	"accessquery/internal/core"
	"accessquery/internal/experiments"
	"accessquery/internal/gtfs"
	"accessquery/internal/synth"
)

// benchSuite returns a suite sized for benchmarking: small cities, the two
// most informative models, a compact budget sweep.
func benchSuite() *experiments.Suite {
	s := experiments.NewSuite(0.05)
	s.Budgets = []float64{0.03, 0.10, 0.30}
	s.Models = []core.ModelKind{core.ModelOLS, core.ModelMLP}
	s.SamplesPerHour = 6
	return s
}

// BenchmarkTable1MatrixComposition regenerates Table I: gravity vs full
// TODAM sizes for both cities at full paper scale.
func BenchmarkTable1MatrixComposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(1)
		rows, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkTable2RuntimeSavings regenerates Table II: naive labeling versus
// the SSR solution across budgets.
func BenchmarkTable2RuntimeSavings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if _, err := s.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3JTErrors regenerates Fig. 3: journey-time MAE across POI
// types, models, and budgets.
func BenchmarkFig3JTErrors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if _, err := s.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4GACMetrics regenerates Fig. 4: GAC MAC/ACSD correlation,
// classification accuracy, and fairness-index error on vaccination centers.
func BenchmarkFig4GACMetrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if _, err := s.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5MACMaps regenerates Fig. 5: the predicted MAC choropleths.
func BenchmarkFig5MACMaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if err := s.PrintFig5(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSPQ measures the single multimodal shortest-path query the
// paper reports as 0.018±0.016 s, on a mid-scale city.
func BenchmarkSPQ(b *testing.B) {
	city, err := synth.Generate(synth.Scaled(synth.Birmingham(), 0.15))
	if err != nil {
		b.Fatal(err)
	}
	engine, err := core.NewEngine(city, core.EngineOptions{
		Interval: gtfs.Interval{Start: 7 * 3600, End: 9 * 3600, Day: 2},
	})
	if err != nil {
		b.Fatal(err)
	}
	rt := engine.Router()
	depart := gtfs.Seconds(8 * 3600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := city.ZoneNode[(i*31)%len(city.Zones)]
		d := city.ZoneNode[(i*17+5)%len(city.Zones)]
		if _, _, err := rt.Route(o, d, depart); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndQuery measures one complete SSR access query (matrix,
// labeling, features, training, inference) at a 5% budget.
func BenchmarkEndToEndQuery(b *testing.B) {
	city, err := synth.Generate(synth.Scaled(synth.Coventry(), 0.1))
	if err != nil {
		b.Fatal(err)
	}
	engine, err := core.NewEngine(city, core.EngineOptions{
		Interval: gtfs.Interval{Start: 7 * 3600, End: 9 * 3600, Day: 2},
	})
	if err != nil {
		b.Fatal(err)
	}
	q := core.Query{
		POIs:           core.POIsOf(city, synth.POISchool),
		Budget:         0.05,
		Model:          core.ModelMLP,
		SamplesPerHour: 10,
		Seed:           1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOfflinePreprocess measures the offline phase: isochrones plus
// transit-hop forest generation.
func BenchmarkOfflinePreprocess(b *testing.B) {
	city, err := synth.Generate(synth.Scaled(synth.Coventry(), 0.1))
	if err != nil {
		b.Fatal(err)
	}
	opts := core.EngineOptions{
		Interval: gtfs.Interval{Start: 7 * 3600, End: 9 * 3600, Day: 2},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewEngine(city, opts); err != nil {
			b.Fatal(err)
		}
	}
}
