package accessquery

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestServingFacade drives the serving layer entirely through the root
// package aliases, the way an embedding program would.
func TestServingFacade(t *testing.T) {
	runs := 0
	run := func(ctx context.Context, req ServeRequest) (*Result, error) {
		runs++
		if req.Category == "hospital" {
			return nil, errors.New("boom")
		}
		return &Result{Fairness: 0.9}, nil
	}
	mgr := NewServeManager(run, ServeConfig{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		mgr.Shutdown(ctx)
	}()

	req, err := ServeRequest{Category: "school", Budget: 0.2, Model: "OLS"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	job, err := mgr.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := mgr.Wait(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fairness != 0.9 {
		t.Errorf("fairness = %f", res.Fairness)
	}
	var snap ServeJobSnapshot = job.Snapshot()
	var state ServeState = snap.State
	if state != ServeStateDone {
		t.Errorf("state = %q", state)
	}

	// Identical resubmission is a cache hit: no second engine run.
	if _, err := mgr.Submit(req); err != nil {
		t.Fatal(err)
	}
	var st ServeStats = mgr.Stats()
	if st.CacheHits != 1 || runs != 1 {
		t.Errorf("cache hits = %d, runs = %d", st.CacheHits, runs)
	}

	// Sentinel errors are reachable through the facade.
	if _, err := mgr.Get("j99999999"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Get(unknown) = %v, want ErrUnknownJob", err)
	}
}

// TestWriteMetrics checks the facade exposes the process-wide registry.
func TestWriteMetrics(t *testing.T) {
	var sb strings.Builder
	if err := WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	// The serve counters registered above must appear.
	if !strings.Contains(sb.String(), "aq_serve_submitted_total") {
		t.Errorf("exposition missing serve counters:\n%.400s", sb.String())
	}
}
