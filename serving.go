package accessquery

import (
	"io"

	"accessquery/internal/obs"
	"accessquery/internal/serve"
)

// The serving layer (internal/serve) turns an Engine into a multi-tenant
// query service: a bounded worker pool with admission control, an LRU
// result cache with TTL, and in-flight deduplication. These aliases expose
// it through the facade so programs embedding the engine can reuse the
// same machinery cmd/aqserver runs on.

// ServeRequest is a normalized, cache-keyed access-query request.
type ServeRequest = serve.Request

// ServeConfig sizes the serving layer: workers, queue depth, cache, and
// per-job timeout.
type ServeConfig = serve.Config

// ServeManager owns the worker pool, queue, cache, and job table.
type ServeManager = serve.Manager

// ServeRunFunc executes one request; typically a closure over
// Engine.RunContext.
type ServeRunFunc = serve.RunFunc

// ServeJob is a submitted query's handle.
type ServeJob = serve.Job

// ServeJobSnapshot is a point-in-time view of a job, including the
// per-stage latency breakdown once the run finishes.
type ServeJobSnapshot = serve.Snapshot

// ServeState is a job's lifecycle state.
type ServeState = serve.State

// Job lifecycle states.
const (
	ServeStateQueued  = serve.StateQueued
	ServeStateRunning = serve.StateRunning
	ServeStateDone    = serve.StateDone
	ServeStateFailed  = serve.StateFailed
)

// ServeStats are a manager's cumulative counters.
type ServeStats = serve.Stats

// Serving-layer sentinel errors.
var (
	// ErrQueueFull reports that admission control rejected a submission.
	ErrQueueFull = serve.ErrQueueFull
	// ErrShutdown reports a submission to a draining manager.
	ErrShutdown = serve.ErrShutdown
	// ErrUnknownJob reports a lookup of an expired or never-issued job ID.
	ErrUnknownJob = serve.ErrUnknownJob
)

// NewServeManager starts a serving layer around run.
func NewServeManager(run ServeRunFunc, cfg ServeConfig) *ServeManager {
	return serve.NewManager(run, cfg)
}

// Stage is one named, timed step of a query run (e.g. "matrix",
// "training"), as recorded in job snapshots.
type Stage = obs.Stage

// WriteMetrics renders the process-wide metrics registry — engine stage
// latencies, SPQ and relaxation counters, serving-layer counters — in
// Prometheus text exposition format.
func WriteMetrics(w io.Writer) error {
	return obs.WritePrometheus(w)
}
