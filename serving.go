package accessquery

import (
	"context"
	"io"

	"accessquery/internal/core"
	"accessquery/internal/obs"
	"accessquery/internal/registry"
	"accessquery/internal/serve"
)

// The serving layer (internal/serve) turns an Engine into a multi-tenant
// query service: a bounded worker pool with admission control, an LRU
// result cache with TTL, and in-flight deduplication. These aliases expose
// it through the facade so programs embedding the engine can reuse the
// same machinery cmd/aqserver runs on.

// ServeRequest is a normalized, cache-keyed access-query request.
type ServeRequest = serve.Request

// ServeConfig sizes the serving layer: workers, queue depth, cache, and
// per-job timeout.
type ServeConfig = serve.Config

// ServeManager owns the worker pool, queue, cache, and job table.
type ServeManager = serve.Manager

// ServeRunFunc executes one request; typically a closure over
// Engine.RunContext.
type ServeRunFunc = serve.RunFunc

// ServeJob is a submitted query's handle.
type ServeJob = serve.Job

// ServeJobSnapshot is a point-in-time view of a job, including the
// per-stage latency breakdown once the run finishes.
type ServeJobSnapshot = serve.Snapshot

// ServeState is a job's lifecycle state.
type ServeState = serve.State

// Job lifecycle states.
const (
	ServeStateQueued    = serve.StateQueued
	ServeStateRunning   = serve.StateRunning
	ServeStateDone      = serve.StateDone
	ServeStateFailed    = serve.StateFailed
	ServeStateCancelled = serve.StateCancelled
)

// ServeStats are a manager's cumulative counters.
type ServeStats = serve.Stats

// Serving-layer sentinel errors.
var (
	// ErrQueueFull reports that admission control rejected a submission.
	ErrQueueFull = serve.ErrQueueFull
	// ErrShutdown reports a submission to a draining manager.
	ErrShutdown = serve.ErrShutdown
	// ErrUnknownJob reports a lookup of an expired or never-issued job ID.
	ErrUnknownJob = serve.ErrUnknownJob
	// ErrBreakerOpen reports a submission refused by the open circuit
	// breaker with no stale cache entry to fall back on.
	ErrBreakerOpen = serve.ErrBreakerOpen
	// ErrCancelled is the terminal error of a job cancelled via
	// ServeManager.Cancel.
	ErrCancelled = serve.ErrCancelled
	// ErrNotCancellable reports a cancel of an already-finished job.
	ErrNotCancellable = serve.ErrNotCancellable
	// ErrUnknownCity reports a request naming a city no tenant serves.
	ErrUnknownCity = serve.ErrUnknownCity
)

// NewServeManager starts a serving layer around run.
func NewServeManager(run ServeRunFunc, cfg ServeConfig) *ServeManager {
	return serve.NewManager(run, cfg)
}

// ServeTenantStats is one city's slice of a manager's admission state:
// breaker, queue share, and tenant-scoped counters.
type ServeTenantStats = serve.TenantStats

// The city registry (internal/registry) owns N named city engines and
// hands each out by epoch: queries acquire a refcounted engine reference,
// hot-swaps install a new epoch with zero downtime, and displaced
// generations drain as their in-flight runs release.

// CityRegistry owns the tenant set; open one with OpenCityRegistry.
type CityRegistry = registry.Registry

// CityTenant is one named city: an epoch-aware engine provider.
type CityTenant = registry.Tenant

// CityTenantSpec names one tenant: a synth preset, or a name=snapshot
// pair.
type CityTenantSpec = registry.TenantSpec

// CityRegistryOptions size preset builds and cache warming.
type CityRegistryOptions = registry.Options

// CityInfo is a point-in-time description of a tenant (epoch, provenance,
// size).
type CityInfo = registry.Info

// RetiredEpoch is the handle of a displaced engine generation; Drained
// closes when its last in-flight run releases.
type RetiredEpoch = registry.Retired

// ParseCitySpec parses a -cities style spec ("coventry,bham=b.snap").
func ParseCitySpec(spec string) ([]CityTenantSpec, error) {
	return registry.ParseSpec(spec)
}

// OpenCityRegistry eagerly builds or restores every tenant in the spec.
func OpenCityRegistry(specs []CityTenantSpec, opts CityRegistryOptions) (*CityRegistry, error) {
	return registry.Open(specs, opts)
}

// NewCityServeManager wires a serving layer over a city registry: requests
// route by their city field, runs acquire the tenant's current engine
// epoch, and results carry {city, epoch} provenance. It is the multi-city
// counterpart of NewServeManager and what cmd/aqserver runs on.
func NewCityServeManager(reg *CityRegistry, cfg ServeConfig, rc ServeRunnerConfig) *ServeManager {
	cfg.Tenants = len(reg.Names())
	cfg.EpochOf = reg.EpochOf
	return serve.NewManager(serve.RegistryRunner(reg, rc), cfg)
}

// ServeRunnerConfig tunes how runners map requests onto engine runs.
type ServeRunnerConfig = serve.RunnerConfig

// Stage is one named, timed step of a query run (e.g. "matrix",
// "training"), as recorded in job snapshots.
type Stage = obs.Stage

// Trace collects a hierarchical span tree for one query run; attach it to
// a context with WithTrace and pass that to Engine.RunContext.
type Trace = obs.Trace

// TraceSummary is a completed trace's immutable span tree, as served by
// GET /v1/jobs/{id}/trace and stored in the recent-traces ring.
type TraceSummary = obs.TraceSummary

// SpanNode is one node of a TraceSummary: name, wall-clock bounds, typed
// attributes, and children.
type SpanNode = obs.SpanNode

// ExplainReport is the per-query execution report assembled from a trace:
// TODAM reduction, SPQ count, cache hits, model convergence, in-sample
// fit, and the stage breakdown.
type ExplainReport = core.ExplainReport

// NewTrace creates an empty trace for one query run.
func NewTrace() *Trace { return obs.NewTrace() }

// WithTrace attaches a trace to ctx so spans started below it are
// recorded.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return obs.WithTrace(ctx, t)
}

// Explain assembles an ExplainReport from a completed trace's summary.
func Explain(sum *TraceSummary) *ExplainReport { return core.Explain(sum) }

// WriteMetrics renders the process-wide metrics registry — engine stage
// latencies, SPQ and relaxation counters, serving-layer counters — in
// Prometheus text exposition format.
func WriteMetrics(w io.Writer) error {
	return obs.WritePrometheus(w)
}
