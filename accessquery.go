// Package accessquery answers dynamic spatio-temporal access queries over
// multimodal transit networks using semi-supervised regression, reproducing
// Conlan, Cunningham & Ferhatosmanoglu, "Dynamic Spatio-temporal Access
// Queries using Semi-Supervised Regression" (ICDE 2023).
//
// An access query asks, for every zone of a city, how costly it is to reach
// a set of points of interest (schools, hospitals, ...) within a time
// interval. Answering it exactly requires pricing millions of trips with
// multimodal shortest-path queries; this package prices only a small
// budgeted sample of zones and infers the rest from pre-computed
// connectivity features (transit-hop trees), cutting processing time by up
// to ~97% while tracking the exact measures closely.
//
// # Quick start
//
//	city, _ := accessquery.GenerateCity(accessquery.ScaledConfig(accessquery.CoventryConfig(), 0.1))
//	engine, _ := accessquery.NewEngine(city, accessquery.EngineOptions{Interval: accessquery.WeekdayAMPeak()})
//	res, _ := engine.Run(accessquery.Query{
//		POIs:   accessquery.POIsOf(city, accessquery.POISchool),
//		Cost:   accessquery.CostJourneyTime,
//		Budget: 0.05,
//		Model:  accessquery.ModelMLP,
//	})
//	fmt.Println(res.Fairness)
//
// The package is a facade over the implementation packages under internal/;
// everything needed to build cities, run queries, and evaluate results is
// re-exported here.
package accessquery

import (
	"time"

	"accessquery/internal/access"
	"accessquery/internal/core"
	"accessquery/internal/geo"
	"accessquery/internal/gtfs"
	"accessquery/internal/router"
	"accessquery/internal/synth"
	"accessquery/internal/todam"
)

// Point is a geographic location in degrees latitude/longitude.
type Point = geo.Point

// Interval is a time interval [start, end, weekday] in seconds since
// midnight.
type Interval = gtfs.Interval

// Seconds is a time of day in seconds since midnight.
type Seconds = gtfs.Seconds

// City is a generated or loaded city: zones, POIs, road network, and
// transit timetable.
type City = synth.City

// CityConfig parameterizes city generation.
type CityConfig = synth.Config

// Zone is a census tract with centroid, population, and vulnerability
// attributes.
type Zone = synth.Zone

// POI is a point of interest.
type POI = synth.POI

// POICategory names a POI set.
type POICategory = synth.POICategory

// The POI categories evaluated in the paper.
const (
	POISchool    = synth.POISchool
	POIHospital  = synth.POIHospital
	POIVaxCenter = synth.POIVaxCenter
	POIJobCenter = synth.POIJobCenter
)

// AllPOICategories lists the paper's POI categories in report order.
var AllPOICategories = synth.AllCategories

// Engine pre-processes a city for a time interval and answers access
// queries.
type Engine = core.Engine

// EngineOptions configure pre-processing.
type EngineOptions = core.EngineOptions

// Query describes one dynamic access query.
type Query = core.Query

// Result holds per-zone access measures and query timings.
type Result = core.Result

// Timing decomposes a query's online cost.
type Timing = core.Timing

// ModelKind selects the semi-supervised regression model.
type ModelKind = core.ModelKind

// The models evaluated in the paper.
const (
	ModelOLS   = core.ModelOLS
	ModelMLP   = core.ModelMLP
	ModelMT    = core.ModelMT
	ModelCOREG = core.ModelCOREG
	ModelGNN   = core.ModelGNN
)

// Extension models beyond the paper's five.
const (
	ModelKRR    = core.ModelKRR
	ModelLapRLS = core.ModelLapRLS
)

// AllModels lists the evaluated models in report order.
var AllModels = core.AllModels

// ExtensionModels lists the additional kernel-based models this
// implementation provides.
var ExtensionModels = core.ExtensionModels

// CostKind selects the access cost definition.
type CostKind = access.CostKind

// The access costs from the paper: journey time and the DfT generalized
// access cost.
const (
	CostJourneyTime = access.JourneyTime
	CostGeneralized = access.Generalized
)

// CostParams are the generalized-cost weights (Eq. 1).
type CostParams = router.CostParams

// Journey is a priced multimodal journey.
type Journey = router.Journey

// Class is the four-way accessibility classification.
type Class = access.Class

// Accessibility classes.
const (
	ClassBest       = access.ClassBest
	ClassMostlyGood = access.ClassMostlyGood
	ClassMostlyBad  = access.ClassMostlyBad
	ClassWorst      = access.ClassWorst
)

// Attractiveness configures the gravity model's distance-decay gate.
type Attractiveness = todam.Attractiveness

// BirminghamConfig returns the preset matching the paper's larger city
// (3217 zones, Table I POI counts).
func BirminghamConfig() CityConfig { return synth.Birmingham() }

// CoventryConfig returns the preset matching the paper's smaller city
// (1014 zones, Table I POI counts).
func CoventryConfig() CityConfig { return synth.Coventry() }

// ScaledConfig shrinks a city preset by factor in (0, 1], preserving its
// shape at a fraction of the cost.
func ScaledConfig(cfg CityConfig, factor float64) CityConfig { return synth.Scaled(cfg, factor) }

// GenerateCity builds a deterministic synthetic city.
func GenerateCity(cfg CityConfig) (*City, error) { return synth.Generate(cfg) }

// NewEngine runs the offline phase (isochrones, transit-hop trees, router)
// over a city.
func NewEngine(city *City, opts EngineOptions) (*Engine, error) { return core.NewEngine(city, opts) }

// LoadEngine restores an engine from a snapshot written by
// Engine.SaveSnapshot, skipping the offline pre-processing.
func LoadEngine(path string) (*Engine, error) { return core.LoadEngine(path) }

// POIsOf extracts a category's POI points from a city.
func POIsOf(city *City, cat POICategory) []Point { return core.POIsOf(city, cat) }

// DefaultCostParams returns the DfT TAG M3.2-style generalized-cost
// weights.
func DefaultCostParams() CostParams { return router.DefaultCostParams() }

// DefaultAttractiveness returns the distance-decay gate used by the
// experiments.
func DefaultAttractiveness() Attractiveness { return todam.DefaultAttractiveness() }

// JainIndex returns Jain's fairness index over per-zone values; 1 is
// perfectly fair.
func JainIndex(values []float64) float64 { return access.JainIndex(values) }

// Gini returns the Gini coefficient of per-zone values; 0 is perfect
// equality.
func Gini(values []float64) (float64, error) { return access.Gini(values) }

// PalmaRatio returns the top-10%-to-bottom-40% share ratio of per-zone
// values, the inequity measure used for transit-based job access.
func PalmaRatio(values []float64) (float64, error) { return access.PalmaRatio(values) }

// Summary condenses a Result into headline numbers.
type Summary = core.Summary

// WeightedJainIndex weights each zone's contribution, e.g. by population or
// a vulnerable-demographic share.
func WeightedJainIndex(values, weights []float64) (float64, error) {
	return access.WeightedJainIndex(values, weights)
}

// WeekdayAMPeak returns the 7am-9am Tuesday interval the paper evaluates.
func WeekdayAMPeak() Interval {
	return Interval{Start: 7 * 3600, End: 9 * 3600, Day: time.Tuesday, Label: "weekday AM peak"}
}

// WeekdayPMPeak returns the 4pm-6pm Tuesday interval.
func WeekdayPMPeak() Interval {
	return Interval{Start: 16 * 3600, End: 18 * 3600, Day: time.Tuesday, Label: "weekday PM peak"}
}
