// Vaccine siting: the paper's motivating TfWM use case. Given a handful of
// candidate sites for a new vaccination center, compare how each placement
// changes citywide access — mean generalized cost and its fair distribution
// across vulnerable residents — using fast SSR queries instead of full
// matrix computations.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"accessquery"
)

func main() {
	log.SetFlags(0)

	city, err := accessquery.GenerateCity(
		accessquery.ScaledConfig(accessquery.BirminghamConfig(), 0.08))
	if err != nil {
		log.Fatal(err)
	}
	engine, err := accessquery.NewEngine(city, accessquery.EngineOptions{
		Interval: accessquery.WeekdayAMPeak(),
	})
	if err != nil {
		log.Fatal(err)
	}

	existing := accessquery.POIsOf(city, accessquery.POIVaxCenter)
	fmt.Printf("%s: %d zones, %d existing vaccination centers\n",
		city.Name, len(city.Zones), len(existing))

	// Baseline accessibility. A fixed-decay attractiveness keeps the
	// gravity consideration radius constant across scenarios, so adding a
	// site never inflates other zones' trip draws.
	att := accessquery.Attractiveness{DecayMeters: 2500, Cutoff: 0.05}
	base := accessquery.Query{
		POIs:           existing,
		Cost:           accessquery.CostGeneralized,
		Budget:         0.10,
		Model:          accessquery.ModelMLP,
		Attractiveness: att,
		Seed:           7,
	}
	baseline, err := engine.Run(base)
	if err != nil {
		log.Fatal(err)
	}
	baseMean, baseVulnFair := summarize(city, baseline)
	baseWorst := worstDecileMean(baseline)
	fmt.Printf("baseline: citywide mean GAC %.1f generalized minutes, "+
		"worst-decile mean %.1f, vulnerability-weighted fairness %.3f (query took %v)\n\n",
		baseMean, baseWorst, baseVulnFair, baseline.Timing.Total())

	// Candidate sites: the centroids of the three worst-served zones. The
	// policy goal is lifting the worst-served decile, so candidates are
	// scored on that.
	candidates := worstZones(baseline, 3)
	fmt.Println("evaluating candidate sites at the worst-served zones:")
	type outcome struct {
		zone     int
		worst    float64
		fairness float64
	}
	var results []outcome
	for _, zone := range candidates {
		withNew := append(append([]accessquery.Point{}, existing...),
			city.Zones[zone].Centroid)
		q := base
		q.POIs = withNew
		res, err := engine.Run(q)
		if err != nil {
			log.Fatal(err)
		}
		_, fair := summarize(city, res)
		worst := worstDecileMean(res)
		results = append(results, outcome{zone: zone, worst: worst, fairness: fair})
		fmt.Printf("  site at zone %4d: worst-decile GAC %.1f min (Δ%+.1f), "+
			"weighted fairness %.3f (Δ%+.3f)\n",
			zone, worst, worst-baseWorst, fair, fair-baseVulnFair)
	}

	best := results[0]
	for _, r := range results[1:] {
		if r.worst < best.worst {
			best = r
		}
	}
	fmt.Printf("\nrecommended site: zone %d (largest improvement for the worst-served decile)\n", best.zone)
}

// worstDecileMean returns the mean GAC (generalized minutes) of the worst
// 10% of valid zones.
func worstDecileMean(res *accessquery.Result) float64 {
	var macs []float64
	for i := range res.MAC {
		if res.Valid[i] {
			macs = append(macs, res.MAC[i])
		}
	}
	sort.Float64s(macs)
	k := len(macs) / 10
	if k == 0 {
		k = 1
	}
	tail := macs[len(macs)-k:]
	var sum float64
	for _, v := range tail {
		sum += v
	}
	return sum / float64(len(tail)) / 60
}

// summarize returns the citywide mean GAC in generalized minutes and the
// vulnerability-weighted Jain fairness index.
func summarize(city *accessquery.City, res *accessquery.Result) (float64, float64) {
	var vals, weights []float64
	var sum float64
	var n int
	for i := range res.MAC {
		if !res.Valid[i] {
			continue
		}
		sum += res.MAC[i]
		n++
		vals = append(vals, res.MAC[i])
		weights = append(weights, city.Zones[i].Vulnerability*float64(city.Zones[i].Population))
	}
	fair, err := accessquery.WeightedJainIndex(vals, weights)
	if err != nil {
		fair = math.NaN()
	}
	return sum / float64(n) / 60, fair
}

// worstZones returns the k valid zones with the highest MAC.
func worstZones(res *accessquery.Result, k int) []int {
	type zc struct {
		zone int
		mac  float64
	}
	var all []zc
	for i := range res.MAC {
		if res.Valid[i] {
			all = append(all, zc{i, res.MAC[i]})
		}
	}
	// Selection of top-k by MAC.
	var out []int
	for len(out) < k && len(all) > 0 {
		maxI := 0
		for j := range all {
			if all[j].mac > all[maxI].mac {
				maxI = j
			}
		}
		out = append(out, all[maxI].zone)
		all = append(all[:maxI], all[maxI+1:]...)
	}
	return out
}
