// Quickstart: generate a small city, run one semi-supervised access query,
// and print the headline measures.
package main

import (
	"fmt"
	"log"

	"accessquery"
)

func main() {
	log.SetFlags(0)

	// 1. Build a city. Presets mirror the paper's Birmingham and Coventry;
	//    scale them down for a laptop-friendly demo.
	city, err := accessquery.GenerateCity(
		accessquery.ScaledConfig(accessquery.CoventryConfig(), 0.15))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city: %s with %d zones, %d bus trips\n",
		city.Name, len(city.Zones), len(city.Feed.Trips))

	// 2. Pre-process for the weekday AM peak: walking isochrones,
	//    transit-hop trees, and the multimodal router.
	engine, err := accessquery.NewEngine(city, accessquery.EngineOptions{
		Interval: accessquery.WeekdayAMPeak(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline pre-processing took %v\n", engine.PrepDuration)

	// 3. Ask: how accessible are schools, pricing only 5% of zones with
	//    shortest-path queries and inferring the rest?
	res, err := engine.Run(accessquery.Query{
		POIs:   accessquery.POIsOf(city, accessquery.POISchool),
		Cost:   accessquery.CostJourneyTime,
		Budget: 0.05,
		Model:  accessquery.ModelMLP,
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report.
	fmt.Printf("\ngravity TODAM: %d trips (%.1f%% below the full matrix)\n",
		res.Matrix.Size(), res.Matrix.Reduction())
	fmt.Printf("SPQs priced: %d, end-to-end time: %v\n",
		res.Timing.SPQs, res.Timing.Total())
	var labeled, inferred int
	var sum float64
	var n int
	for i := range res.MAC {
		if !res.Valid[i] {
			continue
		}
		if res.Labeled[i] {
			labeled++
		} else {
			inferred++
		}
		sum += res.MAC[i]
		n++
	}
	fmt.Printf("zones: %d labeled, %d inferred\n", labeled, inferred)
	fmt.Printf("citywide mean journey time to school: %.1f minutes\n", sum/float64(n)/60)
	fmt.Printf("fairness (Jain's index over MAC): %.3f\n", res.Fairness)

	// 5. Show the best and worst zones.
	best, worst := -1, -1
	for i := range res.MAC {
		if !res.Valid[i] {
			continue
		}
		if best < 0 || res.MAC[i] < res.MAC[best] {
			best = i
		}
		if worst < 0 || res.MAC[i] > res.MAC[worst] {
			worst = i
		}
	}
	fmt.Printf("best-served zone %d: %.1f min (%s)\n",
		best, res.MAC[best]/60, res.Classes[best])
	fmt.Printf("worst-served zone %d: %.1f min (%s)\n",
		worst, res.MAC[worst]/60, res.Classes[worst])
}
