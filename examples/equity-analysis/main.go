// Equity analysis: answer the paper's motivating question 3 — which
// geographic areas are most at risk? Classify every zone's access to job
// centers, find "access deserts" (worst class + high vulnerability), and
// compare fairness across demographic weightings.
package main

import (
	"fmt"
	"log"
	"sort"

	"accessquery"
)

func main() {
	log.SetFlags(0)

	city, err := accessquery.GenerateCity(
		accessquery.ScaledConfig(accessquery.CoventryConfig(), 0.2))
	if err != nil {
		log.Fatal(err)
	}
	engine, err := accessquery.NewEngine(city, accessquery.EngineOptions{
		Interval: accessquery.WeekdayAMPeak(),
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := engine.Run(accessquery.Query{
		POIs:   accessquery.POIsOf(city, accessquery.POIJobCenter),
		Cost:   accessquery.CostGeneralized,
		Budget: 0.10,
		Model:  accessquery.ModelMLP,
		Seed:   3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Class distribution.
	counts := map[accessquery.Class]int{}
	for i := range res.Classes {
		if res.Valid[i] {
			counts[res.Classes[i]]++
		}
	}
	fmt.Printf("%s: job-center accessibility classes\n", city.Name)
	for _, c := range []accessquery.Class{
		accessquery.ClassBest, accessquery.ClassMostlyGood,
		accessquery.ClassMostlyBad, accessquery.ClassWorst,
	} {
		fmt.Printf("  %-12s %4d zones\n", c, counts[c])
	}

	// Access deserts: worst-class zones ranked by vulnerable residents.
	type desert struct {
		zone       int
		vulnerable float64
		macMin     float64
	}
	var deserts []desert
	for i := range res.Classes {
		if res.Valid[i] && res.Classes[i] == accessquery.ClassWorst {
			z := city.Zones[i]
			deserts = append(deserts, desert{
				zone:       i,
				vulnerable: z.Vulnerability * float64(z.Population),
				macMin:     res.MAC[i] / 60,
			})
		}
	}
	sort.Slice(deserts, func(i, j int) bool {
		return deserts[i].vulnerable > deserts[j].vulnerable
	})
	fmt.Printf("\ntop access deserts (worst class, most vulnerable residents):\n")
	for i, d := range deserts {
		if i == 5 {
			break
		}
		fmt.Printf("  zone %4d: ~%.0f vulnerable residents, GAC %.0f generalized min\n",
			d.zone, d.vulnerable, d.macMin)
	}

	// Fairness under different weightings.
	var vals, pop, vuln []float64
	for i := range res.MAC {
		if !res.Valid[i] {
			continue
		}
		vals = append(vals, res.MAC[i])
		z := city.Zones[i]
		pop = append(pop, float64(z.Population))
		vuln = append(vuln, z.Vulnerability*float64(z.Population))
	}
	unweighted := accessquery.JainIndex(vals)
	byPop, err := accessquery.WeightedJainIndex(vals, pop)
	if err != nil {
		log.Fatal(err)
	}
	byVuln, err := accessquery.WeightedJainIndex(vals, vuln)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfairness of access (Jain's index, 1.0 = perfectly even):\n")
	fmt.Printf("  unweighted:              %.3f\n", unweighted)
	fmt.Printf("  population-weighted:     %.3f\n", byPop)
	fmt.Printf("  vulnerability-weighted:  %.3f\n", byVuln)
	if byVuln < byPop {
		fmt.Println("  -> vulnerable residents see a less fair distribution than the population at large")
	} else {
		fmt.Println("  -> access is distributed at least as fairly for vulnerable residents")
	}
}
