// Temporal equity: the paper's motivating question — "does the varying
// transit schedule in some places restrict or prevent access at particular
// times of the day?" — answered by running the same access query for the AM
// peak and the PM peak and comparing levels, fairness, and the Palma ratio
// of access costs between them.
package main

import (
	"fmt"
	"log"

	"accessquery"
)

func main() {
	log.SetFlags(0)

	city, err := accessquery.GenerateCity(
		accessquery.ScaledConfig(accessquery.CoventryConfig(), 0.2))
	if err != nil {
		log.Fatal(err)
	}

	intervals := []accessquery.Interval{
		accessquery.WeekdayAMPeak(),
		accessquery.WeekdayPMPeak(),
	}
	fmt.Printf("%s: job-center access by time of day\n\n", city.Name)
	fmt.Printf("%-18s %12s %10s %10s %8s\n",
		"interval", "mean GAC min", "fairness", "palma", "gini")

	type snapshot struct {
		label     string
		macByZone map[int]float64
	}
	var snaps []snapshot
	for _, iv := range intervals {
		// Each interval gets its own pre-processing: transit-hop trees are
		// interval-bound, exactly the recomputation the SSR solution makes
		// cheap enough to repeat.
		engine, err := accessquery.NewEngine(city, accessquery.EngineOptions{Interval: iv})
		if err != nil {
			log.Fatal(err)
		}
		res, err := engine.Run(accessquery.Query{
			POIs:   accessquery.POIsOf(city, accessquery.POIJobCenter),
			Cost:   accessquery.CostGeneralized,
			Budget: 0.10,
			Model:  accessquery.ModelMLP,
			Seed:   5,
		})
		if err != nil {
			log.Fatal(err)
		}
		var macs []float64
		var sum float64
		byZone := make(map[int]float64)
		for i := range res.MAC {
			if res.Valid[i] {
				macs = append(macs, res.MAC[i])
				sum += res.MAC[i]
				byZone[i] = res.MAC[i]
			}
		}
		palma, err := accessquery.PalmaRatio(macs)
		if err != nil {
			log.Fatal(err)
		}
		gini, err := accessquery.Gini(macs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %12.1f %10.3f %10.2f %8.3f\n",
			iv.Label, sum/float64(len(macs))/60, res.Fairness, palma, gini)
		snaps = append(snaps, snapshot{label: iv.Label, macByZone: byZone})
	}

	// Which zones swing the most between the two intervals?
	if len(snaps) == 2 {
		worstSwing, worstZone := 0.0, -1
		for zone, am := range snaps[0].macByZone {
			pm, ok := snaps[1].macByZone[zone]
			if !ok {
				continue
			}
			if swing := pm - am; swing > worstSwing {
				worstSwing = swing
				worstZone = zone
			}
		}
		if worstZone >= 0 {
			fmt.Printf("\nlargest AM->PM deterioration: zone %d loses %.1f generalized minutes\n",
				worstZone, worstSwing/60)
			fmt.Println("zones like this are where schedule changes restrict access at particular times —")
			fmt.Println("the situation the paper's motivating question 3 asks policy makers to detect.")
		}
	}
}
