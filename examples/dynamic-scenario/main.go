// Dynamic scenario: the "dynamic" in dynamic access queries. A policy maker
// proposes a new orbital bus route through under-served suburbs; because the
// SSR solution answers in seconds rather than hours, the before/after
// comparison is interactive. The engine's pre-processing is re-run on the
// modified timetable — exactly the recomputation the paper's efficiency
// work makes affordable.
package main

import (
	"fmt"
	"log"
	"math"

	"accessquery"
)

func main() {
	log.SetFlags(0)

	cfg := accessquery.ScaledConfig(accessquery.CoventryConfig(), 0.15)
	city, err := accessquery.GenerateCity(cfg)
	if err != nil {
		log.Fatal(err)
	}

	query := func(engine *accessquery.Engine) (*accessquery.Result, error) {
		return engine.Run(accessquery.Query{
			POIs:   accessquery.POIsOf(city, accessquery.POIHospital),
			Cost:   accessquery.CostJourneyTime,
			Budget: 0.10,
			Model:  accessquery.ModelMLP,
			Seed:   11,
		})
	}

	// Before.
	engine, err := accessquery.NewEngine(city, accessquery.EngineOptions{
		Interval: accessquery.WeekdayAMPeak(),
	})
	if err != nil {
		log.Fatal(err)
	}
	before, err := query(engine)
	if err != nil {
		log.Fatal(err)
	}
	bMean := meanMinutes(before)
	fmt.Printf("before: mean journey time to hospital %.1f min, fairness %.3f\n",
		bMean, before.Fairness)

	// Scenario: regenerate the same city with one extra orbital route — the
	// kind of timetable change TfWM tests. (Deterministic seeds keep
	// everything else identical in distribution.)
	newCfg := cfg
	newCfg.OrbitalRoutes++
	newCity, err := accessquery.GenerateCity(newCfg)
	if err != nil {
		log.Fatal(err)
	}
	engine2, err := accessquery.NewEngine(newCity, accessquery.EngineOptions{
		Interval: accessquery.WeekdayAMPeak(),
	})
	if err != nil {
		log.Fatal(err)
	}
	after, err := engine2.Run(accessquery.Query{
		POIs:   accessquery.POIsOf(newCity, accessquery.POIHospital),
		Cost:   accessquery.CostJourneyTime,
		Budget: 0.10,
		Model:  accessquery.ModelMLP,
		Seed:   11,
	})
	if err != nil {
		log.Fatal(err)
	}
	aMean := meanMinutes(after)
	fmt.Printf("after adding an orbital bus route: mean %.1f min, fairness %.3f\n",
		aMean, after.Fairness)
	fmt.Printf("\nscenario delta: %+.1f min mean journey time, %+.3f fairness\n",
		aMean-bMean, after.Fairness-before.Fairness)
	fmt.Printf("re-preprocessing took %v; the access query itself took %v\n",
		engine2.PrepDuration, after.Timing.Total())
	fmt.Printf("(a naive full-TODAM recomputation would have priced %d trips instead of %d)\n",
		after.Matrix.Size(), after.Timing.SPQs)

	if math.Abs(aMean-bMean) < 0.01 {
		fmt.Println("note: the new route barely moved the needle — try more orbitals")
	}
}

func meanMinutes(res *accessquery.Result) float64 {
	var sum float64
	var n int
	for i := range res.MAC {
		if res.Valid[i] {
			sum += res.MAC[i]
			n++
		}
	}
	return sum / float64(n) / 60
}
